"""Tests for the voltage-droop model (paper Fig. 6, Table II)."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.pmu import DROOP_BINS_MV
from repro.platform.specs import FrequencyClass
from repro.vmin.droop import (
    DroopModel,
    droop_bin,
    droop_bin_index,
    droop_ladder,
    max_droop_mv,
)


class TestDroopLadder:
    def test_xgene3_ladder_matches_table2(self, spec3):
        assert droop_ladder(spec3) == (2, 4, 8, 16)

    def test_xgene2_ladder_collapses(self, spec2):
        assert droop_ladder(spec2) == (1, 2, 4)

    @pytest.mark.parametrize(
        "pmds,expected_bin",
        [
            (1, (25, 35)),
            (2, (25, 35)),
            (3, (35, 45)),
            (4, (35, 45)),
            (5, (45, 55)),
            (8, (45, 55)),
            (9, (55, 65)),
            (16, (55, 65)),
        ],
    )
    def test_xgene3_bins_match_table2(self, spec3, pmds, expected_bin):
        assert droop_bin(spec3, pmds) == expected_bin

    def test_zero_pmds_mildest_bin(self, spec3):
        assert droop_bin_index(spec3, 0) == 0

    def test_too_many_pmds_rejected(self, spec2):
        with pytest.raises(ConfigurationError):
            droop_bin_index(spec2, 5)


class TestMaxDroop:
    def test_magnitude_grows_with_pmds(self, spec3):
        values = [max_droop_mv(spec3, n) for n in (1, 4, 8, 16)]
        assert values == sorted(values)

    def test_lower_frequency_class_shaves_magnitude(self, spec3):
        high = max_droop_mv(spec3, 16, FrequencyClass.HIGH)
        skip = max_droop_mv(spec3, 16, FrequencyClass.SKIP)
        assert skip < high


class TestDroopRates:
    """Fig. 6: the ceiling-bin pattern per core-allocation option."""

    def test_full_chip_populates_top_bin(self, spec3):
        model = DroopModel(spec3)
        rates = model.rates_per_mcycles(16, jitter=False)
        assert rates[(55, 65)] > 10

    def test_half_clustered_empty_top_bin(self, spec3):
        # 16T clustered = 8 PMDs: "almost zero droops" in [55, 65).
        model = DroopModel(spec3)
        rates = model.rates_per_mcycles(8, jitter=False)
        assert rates[(55, 65)] < 0.1
        assert rates[(45, 55)] > 10

    def test_quarter_clustered_empty_45_55(self, spec3):
        # 8T clustered = 4 PMDs: "almost zero droops" in [45, 55).
        model = DroopModel(spec3)
        rates = model.rates_per_mcycles(4, jitter=False)
        assert rates[(45, 55)] < 0.1

    def test_smaller_droops_more_frequent(self, spec3):
        model = DroopModel(spec3)
        rates = model.rates_per_mcycles(16, jitter=False)
        ordered = [rates[b] for b in DROOP_BINS_MV]
        assert ordered == sorted(ordered, reverse=True)

    def test_activity_scales_rates(self, spec3):
        model = DroopModel(spec3)
        low = model.rates_per_mcycles(16, activity=0.5, jitter=False)
        high = model.rates_per_mcycles(16, activity=1.5, jitter=False)
        assert high[(55, 65)] == pytest.approx(3 * low[(55, 65)])

    def test_bad_activity_rejected(self, spec3):
        with pytest.raises(ConfigurationError):
            DroopModel(spec3).rates_per_mcycles(16, activity=0.0)

    def test_jitter_is_deterministic_per_workload(self, spec3):
        model = DroopModel(spec3)
        a = model.rates_per_mcycles(16, workload_name="CG")
        b = model.rates_per_mcycles(16, workload_name="CG")
        c = model.rates_per_mcycles(16, workload_name="EP")
        assert a == b
        assert a != c

    def test_frequency_class_thins_rates(self, spec3):
        model = DroopModel(spec3)
        high = model.rates_per_mcycles(
            16, FrequencyClass.HIGH, jitter=False
        )
        skip = model.rates_per_mcycles(
            16, FrequencyClass.SKIP, jitter=False
        )
        assert skip[(55, 65)] < high[(55, 65)]


class TestEventsForInterval:
    def test_events_scale_with_cycles(self, spec3):
        model = DroopModel(spec3)
        one = model.events_for_interval(16, 1e6)
        ten = model.events_for_interval(16, 1e7)
        assert ten[(55, 65)] == pytest.approx(10 * one[(55, 65)])

    def test_zero_cycles_zero_events(self, spec3):
        model = DroopModel(spec3)
        assert all(
            v == 0 for v in model.events_for_interval(16, 0).values()
        )

    def test_negative_cycles_rejected(self, spec3):
        with pytest.raises(ConfigurationError):
            DroopModel(spec3).events_for_interval(16, -1)
