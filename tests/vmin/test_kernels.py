"""Property-based kernel/scalar equivalence tests.

The contract of :mod:`repro.kernels` is *bit-for-bit* equality with the
scalar reference paths — same floating-point operation order, same
rounding, same analytic residue placement — so every assertion here uses
exact ``==``, never approximate closeness.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import Allocation
from repro.kernels import (
    MIX_ORDER,
    analytic_outcome_counts,
    chip_power_grid,
    evaluate_grid,
    outcome_mix_grid,
    pfail_grid,
    safe_vmin_grid,
    safe_vmin_matrix,
    sample_outcome_counts,
)
from repro.platform.chip import ChipState
from repro.platform.specs import xgene2_spec, xgene3_spec
from repro.power.model import PowerModel
from repro.vmin.cache import VminCache
from repro.vmin.characterize import VminCampaign
from repro.vmin.faults import FaultModel
from repro.vmin.model import VminModel

SPEC2 = xgene2_spec()
SPEC3 = xgene3_spec()
VMIN2 = VminModel(SPEC2)
VMIN3 = VminModel(SPEC3)
FAULTS = FaultModel()
POWER2 = PowerModel(SPEC2)

spec_and_model = st.sampled_from([(SPEC2, VMIN2), (SPEC3, VMIN3)])


def core_sets_strategy(spec):
    return st.lists(
        st.sets(
            st.integers(0, spec.n_cores - 1), min_size=1,
            max_size=spec.n_cores,
        ).map(lambda s: tuple(sorted(s))),
        min_size=1,
        max_size=8,
    )


@st.composite
def vmin_grids(draw):
    spec, model = draw(spec_and_model)
    sets = draw(core_sets_strategy(spec))
    n = len(sets)
    freqs = draw(
        st.lists(
            st.sampled_from(spec.frequency_steps()), min_size=n, max_size=n
        )
    )
    deltas = draw(
        st.lists(
            st.floats(-30.0, 40.0, allow_nan=False), min_size=n, max_size=n
        )
    )
    return spec, model, freqs, sets, deltas


class TestVminKernel:
    @given(vmin_grids())
    @settings(max_examples=60, deadline=None)
    def test_evaluate_grid_matches_scalar_exactly(self, case):
        spec, model, freqs, sets, deltas = case
        grid = evaluate_grid(model, freqs, sets, deltas)
        for i in range(len(grid)):
            scalar = model.evaluate(freqs[i], sets[i], deltas[i])
            assert grid.total_mv[i] == scalar.total_mv
            assert grid.base_mv[i] == scalar.base_mv
            assert grid.attenuation[i] == scalar.attenuation
            assert grid.core_offset_mv[i] == scalar.core_offset_mv
            assert grid.droop_class[i] == scalar.droop_class
            assert grid.freq_class[i] == scalar.freq_class

    @given(vmin_grids())
    @settings(max_examples=30, deadline=None)
    def test_safe_vmin_grid_matches_scalar(self, case):
        spec, model, freqs, sets, deltas = case
        got = safe_vmin_grid(model, freqs, sets, deltas)
        want = [
            model.safe_vmin_mv(freqs[i], sets[i], deltas[i])
            for i in range(len(sets))
        ]
        assert got.tolist() == want

    @given(vmin_grids())
    @settings(max_examples=30, deadline=None)
    def test_safe_vmin_matrix_matches_scalar(self, case):
        spec, model, freqs, sets, deltas = case
        matrix = safe_vmin_matrix(model, freqs[0], sets, deltas)
        assert matrix.shape == (len(sets), len(deltas))
        for s, cores in enumerate(sets):
            for d, delta in enumerate(deltas):
                assert matrix[s, d] == model.safe_vmin_mv(
                    freqs[0], cores, delta
                )


@st.composite
def fault_grids(draw):
    n = draw(st.integers(1, 40))
    voltages = draw(
        st.lists(st.integers(400, 1100), min_size=n, max_size=n)
    )
    safes = draw(
        st.lists(
            st.floats(450.0, 1050.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    droops = draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    return (
        np.asarray(voltages, dtype=np.int64),
        np.asarray(safes, dtype=np.float64),
        np.asarray(droops, dtype=np.int64),
    )


class TestFaultKernel:
    @given(fault_grids())
    @settings(max_examples=80, deadline=None)
    def test_pfail_grid_matches_scalar(self, case):
        voltages, safes, droops = case
        grid = pfail_grid(FAULTS, voltages, safes, droops)
        for i in range(len(voltages)):
            assert grid[i] == FAULTS.pfail(
                int(voltages[i]), float(safes[i]), int(droops[i])
            )

    @given(fault_grids())
    @settings(max_examples=80, deadline=None)
    def test_outcome_mix_grid_matches_scalar(self, case):
        voltages, safes, droops = case
        grid = outcome_mix_grid(FAULTS, voltages, safes, droops)
        for i in range(len(voltages)):
            mix = FAULTS.outcome_mix(
                int(voltages[i]), float(safes[i]), int(droops[i])
            )
            assert tuple(mix) == MIX_ORDER  # residue placement order
            assert grid[i].tolist() == [mix[tag] for tag in MIX_ORDER]

    @given(fault_grids(), st.integers(1, 2000))
    @settings(max_examples=80, deadline=None)
    def test_analytic_counts_match_run_level_rounding(self, case, runs):
        voltages, safes, droops = case
        pf = pfail_grid(FAULTS, voltages, safes, droops)
        mix = outcome_mix_grid(FAULTS, voltages, safes, droops)
        failures, split = analytic_outcome_counts(pf, mix, runs)
        for i in range(len(voltages)):
            # The scalar campaign's analytic branch, verbatim.
            want_failures = int(round(float(pf[i]) * runs))
            if pf[i] > 0.0:
                want_failures = max(want_failures, 1)
            assert failures[i] == want_failures
            scalar_mix = FAULTS.outcome_mix(
                int(voltages[i]), float(safes[i]), int(droops[i])
            )
            want_split = {
                tag: int(round(want_failures * share))
                for tag, share in scalar_mix.items()
            }
            residue = want_failures - sum(want_split.values())
            want_split[max(scalar_mix, key=scalar_mix.get)] += residue
            assert split[i].tolist() == [
                want_split[tag] for tag in MIX_ORDER
            ]
            assert int(split[i].sum()) == want_failures

    @given(fault_grids(), st.integers(1, 500), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_sampled_counts_deterministic_and_consistent(
        self, case, runs, seed
    ):
        voltages, safes, droops = case
        pf = pfail_grid(FAULTS, voltages, safes, droops)
        mix = outcome_mix_grid(FAULTS, voltages, safes, droops)
        first = sample_outcome_counts(
            np.random.default_rng(seed), pf, mix, runs
        )
        second = sample_outcome_counts(
            np.random.default_rng(seed), pf, mix, runs
        )
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])
        # Type splits always re-partition the failure draws exactly.
        assert np.array_equal(first[1].sum(axis=-1), first[0])
        assert np.all(first[0] >= 0) and np.all(first[0] <= runs)


@st.composite
def campaign_cases(draw):
    spec = draw(st.sampled_from([SPEC2, SPEC3]))
    configs = []
    for _ in range(draw(st.integers(1, 5))):
        nthreads = draw(st.integers(1, spec.n_cores))
        allocation = draw(
            st.sampled_from([Allocation.CLUSTERED, Allocation.SPREADED])
        )
        freq = draw(st.sampled_from(spec.frequency_steps()))
        delta = draw(st.floats(-15.0, 30.0, allow_nan=False))
        configs.append((nthreads, allocation, freq, delta))
    return spec, configs, draw(st.integers(2, 25))


class TestCampaignEquivalence:
    @given(campaign_cases())
    @settings(max_examples=20, deadline=None)
    def test_batched_campaign_matches_scalar_reference(self, case):
        spec, configs, step_mv = case
        kernel = VminCampaign(
            spec, step_mv=step_mv, cache=VminCache(capacity=0),
            use_kernels=True,
        )
        scalar = VminCampaign(
            spec, step_mv=step_mv, cache=VminCache(capacity=0),
            use_kernels=False,
        )
        points = [
            kernel.point("wl", nt, alloc, freq, workload_delta_mv=delta)
            for nt, alloc, freq, delta in configs
        ]
        searches = kernel.measure_safe_vmin_batch(points)
        scans = kernel.scan_unsafe_region_batch(points)
        for point, search, scan in zip(points, searches, scans):
            ref_search = scalar._measure_safe_vmin_scalar(point)
            ref_scan = scalar._scan_unsafe_region_scalar(point)
            assert search.safe_vmin_mv == ref_search.safe_vmin_mv
            assert search.true_vmin_mv == ref_search.true_vmin_mv
            assert len(search.steps) == len(ref_search.steps)
            for got, want in zip(search.steps, ref_search.steps):
                assert got.voltage_mv == want.voltage_mv
                assert got.runs == want.runs
                assert got.pfail == want.pfail
                # Same counts AND same dict order (cache payloads).
                assert list(got.outcomes.items()) == list(
                    want.outcomes.items()
                )
            assert scan.safe_vmin_mv == ref_scan.safe_vmin_mv
            assert scan.crash_voltage_mv == ref_scan.crash_voltage_mv
            assert len(scan.steps) == len(ref_scan.steps)
            for got, want in zip(scan.steps, ref_scan.steps):
                assert got.voltage_mv == want.voltage_mv
                assert got.pfail == want.pfail
                assert list(got.outcomes.items()) == list(
                    want.outcomes.items()
                )

    @given(campaign_cases())
    @settings(max_examples=15, deadline=None)
    def test_pfail_curve_matches_scalar(self, case):
        spec, configs, step_mv = case
        kernel = VminCampaign(
            spec, step_mv=step_mv, cache=VminCache(capacity=0)
        )
        nt, alloc, freq, delta = configs[0]
        point = kernel.point("wl", nt, alloc, freq, workload_delta_mv=delta)
        voltages = range(
            spec.nominal_voltage_mv, spec.min_voltage_mv - 1, -step_mv
        )
        got = kernel.pfail_curve(point, voltages)
        true_vmin, droop_class = kernel._true_vmin(point)
        assert got == {
            int(v): FAULTS.pfail(v, true_vmin, droop_class)
            for v in voltages
        }

    @given(campaign_cases())
    @settings(max_examples=15, deadline=None)
    def test_pfail_curves_batch_matches_per_point(self, case):
        spec, configs, step_mv = case
        kernel = VminCampaign(
            spec, step_mv=step_mv, cache=VminCache(capacity=0)
        )
        points = [
            kernel.point("wl", nt, alloc, freq, workload_delta_mv=delta)
            for nt, alloc, freq, delta in configs
        ]
        voltages = range(
            spec.nominal_voltage_mv, spec.min_voltage_mv - 1, -step_mv
        )
        batched = kernel.pfail_curves(points, voltages)
        assert batched == [
            kernel.pfail_curve(point, voltages) for point in points
        ]


@st.composite
def power_cases(draw):
    n = draw(st.integers(1, 12))
    voltages = draw(
        st.lists(st.integers(500, 1050), min_size=n, max_size=n)
    )
    freqs = draw(
        st.lists(
            st.sampled_from(SPEC2.frequency_steps()),
            min_size=n,
            max_size=n,
        )
    )
    acts = draw(
        st.lists(
            st.floats(0.0, 1.5, allow_nan=False), min_size=n, max_size=n
        )
    )
    mems = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=n, max_size=n
        )
    )
    sets = draw(
        st.lists(
            st.sets(
                st.integers(0, SPEC2.n_cores - 1), min_size=1,
                max_size=SPEC2.n_cores,
            ).map(lambda s: tuple(sorted(s))),
            min_size=n,
            max_size=n,
        )
    )
    mult = draw(st.floats(0.1, 3.0, allow_nan=False))
    return voltages, freqs, acts, sets, mems, mult


class TestPowerKernel:
    @given(power_cases())
    @settings(max_examples=40, deadline=None)
    def test_chip_power_grid_matches_scalar_exactly(self, case):
        voltages, freqs, acts, sets, mems, mult = case
        grid = chip_power_grid(
            POWER2, voltages, freqs, acts, sets, mems,
            leakage_multiplier=mult,
        )
        for i in range(len(grid)):
            state = ChipState(
                spec=SPEC2,
                voltage_mv=voltages[i],
                pmd_frequencies_hz=(freqs[i],) * SPEC2.n_pmds,
                active_cores=frozenset(sets[i]),
            )
            want = POWER2.chip_power(
                state,
                {core: acts[i] for core in sets[i]},
                mems[i],
                leakage_multiplier=mult,
            )
            assert grid.dynamic_w[i] == want.dynamic_w
            assert grid.leakage_w[i] == want.leakage_w
            assert grid.pmd_overhead_w[i] == want.pmd_overhead_w
            assert grid.uncore_w[i] == want.uncore_w
            assert grid.external_w[i] == want.external_w
            assert grid.total_w[i] == want.total_w
