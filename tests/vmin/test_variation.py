"""Tests for the static core-to-core variation map (paper Fig. 4)."""

import pytest

from repro.errors import ConfigurationError
from repro.vmin.variation import make_variation_map, max_core_offset_mv


class TestPaperChip:
    def test_xgene2_seed0_pmd2_most_robust(self, spec2):
        # Fig. 4: PMD2 (cores 4, 5) has the largest safe region.
        variation = make_variation_map(spec2, 0)
        assert variation.most_robust_pmd(spec2) == 2

    def test_xgene2_seed0_pmd0_or_1_most_sensitive(self, spec2):
        variation = make_variation_map(spec2, 0)
        assert variation.most_sensitive_pmd(spec2) in (0, 1)

    def test_xgene2_span_within_30mv(self, spec2):
        # Section III.A: up to ~30 mV core-to-core on X-Gene 2.
        variation = make_variation_map(spec2, 0)
        assert 20 <= variation.span_mv() <= 30

    def test_xgene3_offsets_smaller(self, spec3):
        variation = make_variation_map(spec3, 0)
        assert max(variation.offsets_mv) <= max_core_offset_mv(spec3)
        assert max_core_offset_mv(spec3) < max_core_offset_mv(spec2_like())


def spec2_like():
    from repro.platform.specs import xgene2_spec

    return xgene2_spec()


class TestRandomChips:
    def test_offsets_bounded(self, spec3):
        for seed in range(1, 6):
            variation = make_variation_map(spec3, seed)
            limit = max_core_offset_mv(spec3)
            assert all(0 <= o <= limit for o in variation.offsets_mv)

    def test_one_offset_per_core(self, spec3):
        variation = make_variation_map(spec3, 3)
        assert len(variation.offsets_mv) == spec3.n_cores

    def test_deterministic_per_seed(self, spec2):
        assert make_variation_map(spec2, 5) == make_variation_map(spec2, 5)

    def test_seeds_differ(self, spec2):
        assert make_variation_map(spec2, 5) != make_variation_map(spec2, 6)


class TestQueries:
    def test_offset_of(self, spec2):
        variation = make_variation_map(spec2, 0)
        assert variation.offset_of(4) == variation.offsets_mv[4]

    def test_offset_out_of_range(self, spec2):
        variation = make_variation_map(spec2, 0)
        with pytest.raises(ConfigurationError):
            variation.offset_of(8)

    def test_max_offset_over_cores(self, spec2):
        variation = make_variation_map(spec2, 0)
        assert variation.max_offset([4, 5]) == max(
            variation.offsets_mv[4], variation.offsets_mv[5]
        )

    def test_max_offset_empty_is_zero(self, spec2):
        variation = make_variation_map(spec2, 0)
        assert variation.max_offset([]) == 0.0
