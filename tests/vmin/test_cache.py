"""Tests for the content-addressed Vmin characterization cache."""

import dataclasses
import json

import pytest

from repro.allocation import Allocation
from repro.experiments.energy_runner import EnergyRunner
from repro.platform.specs import get_spec
from repro.vmin.cache import (
    VminCache,
    configure_default_cache,
    ensure_default_cache,
    get_default_cache,
    make_key,
    model_fingerprint,
    occupancy_of,
    reset_default_cache,
    spec_fingerprint,
)
from repro.vmin.characterize import VminCampaign
from repro.vmin.model import VminModel
from repro.workloads.suites import characterization_set


@pytest.fixture(autouse=True)
def fresh_default_cache():
    """Isolate every test from the process-wide default cache."""
    reset_default_cache()
    yield
    reset_default_cache()


class TestKeying:
    def test_spec_fingerprint_stable(self):
        assert spec_fingerprint(get_spec("xgene2")) == spec_fingerprint(
            get_spec("xgene2")
        )

    def test_spec_fingerprint_differs_between_platforms(self):
        assert spec_fingerprint(get_spec("xgene2")) != spec_fingerprint(
            get_spec("xgene3")
        )

    def test_spec_change_invalidates_fingerprint(self):
        spec = get_spec("xgene2")
        altered = dataclasses.replace(spec, nominal_voltage_mv=990)
        assert spec_fingerprint(spec) != spec_fingerprint(altered)

    def test_model_fingerprint_tracks_silicon_instance(self):
        spec = get_spec("xgene2")
        assert model_fingerprint(VminModel(spec)) == model_fingerprint(
            VminModel(spec)
        )
        assert model_fingerprint(VminModel(spec)) != model_fingerprint(
            VminModel(spec, silicon_seed=3)
        )

    def test_make_key_order_independent(self):
        assert make_key(a=1, b=2) == make_key(b=2, a=1)
        assert make_key(a=1, b=2) != make_key(a=2, b=1)

    def test_occupancy_counts_threads_per_pmd(self):
        spec = get_spec("xgene2")
        assert occupancy_of(spec, (0, 1, 2)) == {"0": 2, "1": 1}


class TestVminCacheCore:
    def test_miss_then_hit(self):
        cache = VminCache()
        assert cache.get("k") is None
        cache.put("k", {"x": 1})
        assert cache.get("k") == {"x": 1}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_lru_eviction(self):
        cache = VminCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables_memoization(self):
        cache = VminCache(capacity=0)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = VminCache()
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_stats_delta(self):
        cache = VminCache()
        cache.put("k", 1)
        before = cache.stats.snapshot()
        cache.get("k")
        cache.get("k")
        delta = cache.stats.delta(before)
        assert delta.hits == 2
        assert delta.misses == 0


class TestDiskStore:
    def test_round_trip_across_instances(self, tmp_path):
        first = VminCache(cache_dir=tmp_path)
        first.put("k", {"vmin": 880})
        second = VminCache(cache_dir=tmp_path)
        assert second.get("k") == {"vmin": 880}
        assert second.stats.disk_hits == 1

    def test_corrupted_entry_discarded_not_raised(self, tmp_path):
        cache = VminCache(cache_dir=tmp_path)
        cache.put("k", {"vmin": 880})
        path = tmp_path / "k.json"
        path.write_text("{ not json !!!")
        fresh = VminCache(cache_dir=tmp_path)
        assert fresh.get("k") is None
        assert fresh.stats.corrupt_discarded == 1
        assert not path.exists()

    def test_mismatched_key_discarded(self, tmp_path):
        cache = VminCache(cache_dir=tmp_path)
        (tmp_path / "k.json").write_text(
            json.dumps({"key": "other", "value": 1})
        )
        assert cache.get("k") is None
        assert cache.stats.corrupt_discarded == 1

    def test_unserializable_value_still_cached_in_memory(self, tmp_path):
        cache = VminCache(cache_dir=tmp_path)
        cache.put("k", {0, 1})  # sets are not JSON-serializable
        assert cache.get("k") == {0, 1}


class TestDefaultCache:
    def test_ensure_keeps_matching_cache(self, tmp_path):
        configured = ensure_default_cache(tmp_path)
        assert ensure_default_cache(tmp_path) is configured
        assert get_default_cache() is configured

    def test_ensure_replaces_on_dir_change(self, tmp_path):
        first = ensure_default_cache(tmp_path / "a")
        second = ensure_default_cache(tmp_path / "b")
        assert first is not second
        assert second.cache_dir == tmp_path / "b"

    def test_configure_installs_disk_store(self, tmp_path):
        cache = configure_default_cache(cache_dir=tmp_path)
        assert get_default_cache() is cache
        assert cache.cache_dir == tmp_path


class TestCampaignMemoization:
    def _point(self, campaign, spec):
        return campaign.point(
            "mcf",
            4,
            Allocation.SPREADED,
            spec.fmax_hz,
            workload_delta_mv=12.0,
        )

    def test_safe_vmin_hit_returns_identical_result(self):
        spec = get_spec("xgene2")
        campaign = VminCampaign(spec)
        point = self._point(campaign, spec)
        first = campaign.measure_safe_vmin(point)
        before = get_default_cache().stats.snapshot()
        second = campaign.measure_safe_vmin(point)
        delta = get_default_cache().stats.delta(before)
        assert delta.hits == 1 and delta.misses == 0
        assert second.safe_vmin_mv == first.safe_vmin_mv
        assert second.true_vmin_mv == first.true_vmin_mv
        assert len(second.steps) == len(first.steps)
        for mine, theirs in zip(second.steps, first.steps):
            assert mine.voltage_mv == theirs.voltage_mv
            assert mine.outcomes == theirs.outcomes

    def test_two_campaigns_share_the_default_cache(self):
        spec = get_spec("xgene2")
        first = VminCampaign(spec)
        point = first.measure_safe_vmin(self._point(first, spec)).point
        before = get_default_cache().stats.snapshot()
        second = VminCampaign(spec)
        second.measure_safe_vmin(second.point(
            point.workload,
            point.nthreads,
            point.allocation,
            point.freq_hz,
            workload_delta_mv=point.workload_delta_mv,
        ))
        delta = get_default_cache().stats.delta(before)
        assert delta.hits == 1 and delta.misses == 0

    def test_different_spec_misses(self):
        point_args = ("mcf", 4, Allocation.SPREADED)
        for platform in ("xgene2", "xgene3"):
            spec = get_spec(platform)
            campaign = VminCampaign(spec)
            campaign.measure_safe_vmin(
                campaign.point(*point_args, spec.fmax_hz)
            )
        assert get_default_cache().stats.hits == 0
        assert get_default_cache().stats.misses == 2

    def test_different_silicon_misses(self):
        spec = get_spec("xgene2")
        for silicon_seed in (0, 1):
            campaign = VminCampaign(
                spec, vmin_model=VminModel(spec, silicon_seed=silicon_seed)
            )
            campaign.measure_safe_vmin(self._point(campaign, spec))
        assert get_default_cache().stats.hits == 0

    def test_trials_mode_not_memoized(self):
        spec = get_spec("xgene2")
        campaign = VminCampaign(spec)
        point = self._point(campaign, spec)
        campaign.measure_safe_vmin(point, mode="trials")
        assert get_default_cache().stats.lookups == 0

    def test_explicit_cache_overrides_default(self):
        spec = get_spec("xgene2")
        private = VminCache()
        campaign = VminCampaign(spec, cache=private)
        campaign.measure_safe_vmin(self._point(campaign, spec))
        assert private.stats.misses == 1
        assert get_default_cache().stats.lookups == 0

    def test_unsafe_scan_memoized(self):
        spec = get_spec("xgene2")
        campaign = VminCampaign(spec)
        point = self._point(campaign, spec)
        first = campaign.scan_unsafe_region(point)
        before = get_default_cache().stats.snapshot()
        second = campaign.scan_unsafe_region(point)
        delta = get_default_cache().stats.delta(before)
        # One hit for the embedded safe-Vmin search, one for the scan.
        assert delta.hits == 2 and delta.misses == 0
        assert second.crash_voltage_mv == first.crash_voltage_mv
        assert len(second.steps) == len(first.steps)


class TestEnergyRunnerMemoization:
    def test_safe_voltage_cached(self):
        spec = get_spec("xgene2")
        runner = EnergyRunner(spec)
        profile = characterization_set()[0]
        first = runner.safe_voltage_mv(
            profile, 4, Allocation.CLUSTERED, spec.fmax_hz
        )
        before = get_default_cache().stats.snapshot()
        second = runner.safe_voltage_mv(
            profile, 4, Allocation.CLUSTERED, spec.fmax_hz
        )
        delta = get_default_cache().stats.delta(before)
        assert second == first
        assert delta.hits == 1 and delta.misses == 0

    def test_same_frequency_class_shares_entry(self):
        spec = get_spec("xgene2")
        runner = EnergyRunner(spec)
        profile = characterization_set()[0]
        steps = [
            f
            for f in spec.frequency_steps()
            if spec.frequency_class(f) == spec.frequency_class(spec.fmax_hz)
        ]
        assert len(steps) >= 2
        first = runner.safe_voltage_mv(
            profile, 4, Allocation.CLUSTERED, steps[0]
        )
        second = runner.safe_voltage_mv(
            profile, 4, Allocation.CLUSTERED, steps[1]
        )
        assert first == second
        assert get_default_cache().stats.hits == 1

    def test_disk_cache_shared_across_runners(self, tmp_path):
        spec = get_spec("xgene2")
        profile = characterization_set()[0]
        configure_default_cache(cache_dir=tmp_path)
        EnergyRunner(spec).safe_voltage_mv(
            profile, 4, Allocation.CLUSTERED, spec.fmax_hz
        )
        configure_default_cache(cache_dir=tmp_path)
        EnergyRunner(spec).safe_voltage_mv(
            profile, 4, Allocation.CLUSTERED, spec.fmax_hz
        )
        stats = get_default_cache().stats
        assert stats.hits == 1 and stats.disk_hits == 1
