"""Tests for the regression Vmin predictor (the rejected alternative)."""

import pytest

from repro.errors import ConfigurationError
from repro.vmin.model import VminModel
from repro.vmin.prediction import VminPredictor


@pytest.fixture(scope="module")
def fitted2():
    from repro.platform.specs import xgene2_spec

    spec = xgene2_spec()
    model = VminModel(spec)
    predictor = VminPredictor(spec)
    points = predictor.sample_configurations(model, fraction=0.4, seed=1)
    predictor.fit(points)
    return spec, model, predictor


class TestFitting:
    def test_unfitted_rejects_prediction(self, spec2, namd):
        predictor = VminPredictor(spec2)
        with pytest.raises(ConfigurationError):
            predictor.predict_mv((0,), spec2.fmax_hz, namd)

    def test_needs_enough_points(self, spec2):
        predictor = VminPredictor(spec2)
        with pytest.raises(ConfigurationError):
            predictor.fit([])

    def test_sampling_fraction_validated(self, spec2, vmin2):
        predictor = VminPredictor(spec2)
        with pytest.raises(ConfigurationError):
            predictor.sample_configurations(vmin2, fraction=0.0)

    def test_sampling_deterministic(self, spec2, vmin2):
        predictor = VminPredictor(spec2)
        a = predictor.sample_configurations(vmin2, fraction=0.2, seed=5)
        b = predictor.sample_configurations(vmin2, fraction=0.2, seed=5)
        assert [p.vmin_mv for p in a] == [p.vmin_mv for p in b]


class TestAccuracy:
    def test_mean_error_small(self, fitted2):
        # The predictor IS accurate on average — that's what makes it
        # seductive.
        spec, model, predictor = fitted2
        report = predictor.evaluate(model)
        assert report.mean_abs_error_mv < 15.0

    def test_but_it_underpredicts_a_tail(self, fitted2):
        # ... and that's what makes it dangerous (Section VI.A).
        spec, model, predictor = fitted2
        report = predictor.evaluate(model)
        assert report.underpredicted_configs > 0
        assert report.max_underprediction_mv > 5.0

    def test_guard_closes_the_tail(self, fitted2):
        spec, model, predictor = fitted2
        guard = predictor.required_guard_mv(model)
        report = predictor.evaluate(model, guard_mv=guard)
        assert report.underpredicted_configs == 0

    def test_required_guard_is_substantial(self, fitted2):
        # The paper's argument in one number: the guard that makes the
        # predictor safe hands back a large share of the reclaimable
        # margin (tens of mV out of the ~60-110 mV guardband).
        spec, model, predictor = fitted2
        assert predictor.required_guard_mv(model) > 10.0

    def test_underprediction_rate_fraction(self, fitted2):
        spec, model, predictor = fitted2
        report = predictor.evaluate(model)
        assert 0.0 < report.underprediction_rate < 1.0

    def test_prediction_tracks_pmd_count(self, fitted2, cg):
        # Sanity: the fitted model learned the dominant feature.
        spec, model, predictor = fitted2
        few = predictor.predict_mv((0, 1), spec.fmax_hz, cg)
        many = predictor.predict_mv(
            tuple(range(8)), spec.fmax_hz, cg
        )
        assert many > few
