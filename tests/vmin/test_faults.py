"""Tests for the sub-Vmin failure model (paper Section III.B, Fig. 5)."""

import random

import pytest

from repro.errors import (
    ConfigurationError,
    SilentDataCorruption,
    SystemCrash,
)
from repro.vmin.faults import (
    FAULT_OUTCOMES,
    OUTCOME_CRASH,
    OUTCOME_PASS,
    OUTCOME_SDC,
    FaultModel,
)


@pytest.fixture
def model():
    return FaultModel()


class TestPfailCurve:
    def test_zero_at_and_above_vmin(self, model):
        assert model.pfail(800, 800, 0) == 0.0
        assert model.pfail(900, 800, 0) == 0.0

    def test_one_at_crash_point(self, model):
        region = model.unsafe_region(800, 0)
        assert model.pfail(region.crash_voltage_mv, 800, 0) == 1.0

    def test_monotone_decreasing_in_voltage(self, model):
        values = [model.pfail(v, 800, 1) for v in range(810, 720, -5)]
        assert values == sorted(values)

    def test_larger_droop_class_steeper(self, model):
        # Fig. 5: max-threads configurations fail more steeply.
        mild = model.pfail(790, 800, 0)
        severe = model.pfail(790, 800, 3)
        assert severe > mild

    def test_width_shrinks_with_droop_class(self, model):
        widths = [model.width_mv(c) for c in range(4)]
        assert widths == sorted(widths, reverse=True)
        assert min(widths) >= model.MIN_WIDTH_MV

    def test_width_bad_class(self, model):
        with pytest.raises(ConfigurationError):
            model.width_mv(7)


class TestOutcomeMix:
    def test_mix_sums_to_one(self, model):
        mix = model.outcome_mix(780, 800, 1)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_sdc_dominates_near_vmin(self, model):
        mix = model.outcome_mix(799, 800, 1)
        assert mix[OUTCOME_SDC] > mix[OUTCOME_CRASH]

    def test_crash_dominates_deep(self, model):
        region = model.unsafe_region(800, 1)
        mix = model.outcome_mix(region.crash_voltage_mv, 800, 1)
        assert mix[OUTCOME_CRASH] > mix[OUTCOME_SDC]

    def test_all_outcomes_present(self, model):
        mix = model.outcome_mix(780, 800, 1)
        assert set(mix) == set(FAULT_OUTCOMES)


class TestSampling:
    def test_always_passes_above_vmin(self, model):
        rng = random.Random(0)
        outcomes = {
            model.sample_outcome(820, 800, 1, rng) for _ in range(100)
        }
        assert outcomes == {OUTCOME_PASS}

    def test_always_fails_below_crash(self, model):
        rng = random.Random(0)
        region = model.unsafe_region(800, 1)
        outcomes = {
            model.sample_outcome(
                region.crash_voltage_mv - 5, 800, 1, rng
            )
            for _ in range(100)
        }
        assert OUTCOME_PASS not in outcomes

    def test_sampling_statistics_match_pfail(self, model):
        rng = random.Random(42)
        voltage, vmin, klass = 785, 800, 1
        p = model.pfail(voltage, vmin, klass)
        n = 4000
        fails = sum(
            model.sample_outcome(voltage, vmin, klass, rng) != OUTCOME_PASS
            for _ in range(n)
        )
        assert fails / n == pytest.approx(p, abs=0.03)

    def test_raise_for_outcome(self, model):
        model.raise_for_outcome(OUTCOME_PASS, 800)  # no-op
        with pytest.raises(SilentDataCorruption):
            model.raise_for_outcome(OUTCOME_SDC, 780)
        with pytest.raises(SystemCrash):
            model.raise_for_outcome(OUTCOME_CRASH, 760)

    def test_raise_unknown_outcome(self, model):
        with pytest.raises(ConfigurationError):
            model.raise_for_outcome("gremlins", 780)


class TestAllPassProbability:
    def test_safe_level_certain(self, model):
        assert model.probability_all_pass(800, 800, 1, 1000) == 1.0

    def test_thousand_runs_catch_small_pfail(self, model):
        # The 1000-run criterion: even tiny pfail makes a full pass
        # unlikely -- why the paper's Vmin needs that many runs.
        voltage = 799  # 1 mV below
        p_all = model.probability_all_pass(voltage, 800, 1, 1000)
        assert p_all < 0.95

    def test_negative_runs_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.probability_all_pass(800, 800, 1, -1)

    def test_region_width_property(self, model):
        region = model.unsafe_region(800, 2)
        assert region.width_mv == pytest.approx(model.width_mv(2))
