"""Tests for the Vmin characterization campaigns (paper Section III)."""

import pytest

from repro.allocation import Allocation
from repro.errors import CharacterizationError
from repro.units import ghz
from repro.vmin.characterize import VminCampaign
from repro.vmin.faults import OUTCOME_PASS


@pytest.fixture
def campaign2(spec2):
    return VminCampaign(spec2)


@pytest.fixture
def campaign3(spec3):
    return VminCampaign(spec3)


class TestSafeVminSearch:
    def test_measured_vmin_covers_truth(self, campaign2, spec2):
        point = campaign2.point("CG", 8, Allocation.CLUSTERED, ghz(2.4))
        result = campaign2.measure_safe_vmin(point)
        assert result.safe_vmin_mv >= result.true_vmin_mv
        assert result.safe_vmin_mv - result.true_vmin_mv < campaign2.step_mv

    def test_guardband_positive(self, campaign2):
        point = campaign2.point("namd", 8, Allocation.CLUSTERED, ghz(2.4))
        result = campaign2.measure_safe_vmin(point)
        assert result.guardband_mv > 0
        assert result.nominal_mv == 980

    def test_trials_mode_close_to_analytic(self, campaign3, spec3):
        point = campaign3.point("FT", 32, Allocation.CLUSTERED, ghz(3.0))
        analytic = campaign3.measure_safe_vmin(point, mode="analytic")
        trials = campaign3.measure_safe_vmin(point, mode="trials")
        # Stochastic campaigns can miss tiny pfail at the first unsafe
        # step, but never by more than a step or two.
        assert abs(trials.safe_vmin_mv - analytic.safe_vmin_mv) <= 20

    def test_unknown_mode_rejected(self, campaign2):
        point = campaign2.point("CG", 8, Allocation.CLUSTERED, ghz(2.4))
        with pytest.raises(CharacterizationError):
            campaign2.measure_safe_vmin(point, mode="psychic")

    def test_steps_descend_from_nominal(self, campaign2):
        point = campaign2.point("CG", 4, Allocation.SPREADED, ghz(2.4))
        result = campaign2.measure_safe_vmin(point)
        voltages = [s.voltage_mv for s in result.steps]
        assert voltages[0] == 980
        assert voltages == sorted(voltages, reverse=True)

    def test_lower_frequency_lower_vmin(self, campaign2):
        hi = campaign2.measure_safe_vmin(
            campaign2.point("CG", 8, Allocation.CLUSTERED, ghz(2.4))
        )
        lo = campaign2.measure_safe_vmin(
            campaign2.point("CG", 8, Allocation.CLUSTERED, ghz(0.9))
        )
        assert lo.safe_vmin_mv < hi.safe_vmin_mv


class TestUnsafeScan:
    def test_scan_reaches_crash_point(self, campaign2):
        point = campaign2.point("CG", 8, Allocation.CLUSTERED, ghz(2.4))
        scan = campaign2.scan_unsafe_region(point)
        assert scan.crash_voltage_mv < scan.safe_vmin_mv
        last = scan.steps[-1]
        assert last.pfail >= 1.0 or last.failures == last.runs

    def test_scan_runs_60_per_level(self, campaign2):
        point = campaign2.point("CG", 8, Allocation.CLUSTERED, ghz(2.4))
        scan = campaign2.scan_unsafe_region(point)
        assert all(s.runs == 60 for s in scan.steps)

    def test_failure_mix_recorded(self, campaign2):
        point = campaign2.point("CG", 8, Allocation.CLUSTERED, ghz(2.4))
        scan = campaign2.scan_unsafe_region(point, mode="trials")
        deep = scan.steps[-1]
        assert deep.failures > 0
        assert sum(deep.outcomes.values()) >= deep.runs

    def test_outcome_bookkeeping_consistent(self, campaign3):
        point = campaign3.point("milc", 16, Allocation.SPREADED, ghz(3.0))
        scan = campaign3.scan_unsafe_region(point, mode="trials")
        for step in scan.steps:
            assert step.outcomes[OUTCOME_PASS] + step.failures == step.runs


class TestPfailCurve:
    def test_curve_monotone(self, campaign3):
        point = campaign3.point("CG", 32, Allocation.CLUSTERED, ghz(3.0))
        curve = campaign3.pfail_curve(point, range(870, 700, -10))
        values = list(curve.values())
        assert values == sorted(values)

    def test_curve_zero_at_nominal(self, campaign3, spec3):
        point = campaign3.point("CG", 32, Allocation.CLUSTERED, ghz(3.0))
        curve = campaign3.pfail_curve(point, [spec3.nominal_voltage_mv])
        assert curve[spec3.nominal_voltage_mv] == 0.0


class TestValidation:
    def test_point_core_count_mismatch(self, campaign2):
        with pytest.raises(CharacterizationError):
            campaign2.point(
                "CG", 4, Allocation.CLUSTERED, ghz(2.4), cores=(0, 1)
            )

    def test_bad_step(self, spec2):
        with pytest.raises(CharacterizationError):
            VminCampaign(spec2, step_mv=0)

    def test_bad_runs(self, spec2):
        with pytest.raises(CharacterizationError):
            VminCampaign(spec2, pass_runs=0)

    def test_point_label(self, campaign2):
        point = campaign2.point("CG", 4, Allocation.SPREADED, ghz(2.4))
        assert point.label() == "4T(spreaded)@2.4GHz"
