"""Tests for the ground-truth safe-Vmin model (paper Sections III/IV)."""

import pytest

from repro.allocation import Allocation, cores_for
from repro.errors import ConfigurationError
from repro.platform.specs import FrequencyClass
from repro.units import ghz, MHZ
from repro.vmin.model import VminModel, variation_attenuation
from repro.workloads.suites import characterization_set


class TestTable2GroundTruth:
    """The X-Gene 3 base table is paper Table II verbatim."""

    @pytest.mark.parametrize(
        "droop_class,expected_high,expected_skip",
        [(0, 780, 770), (1, 800, 780), (2, 810, 790), (3, 830, 820)],
    )
    def test_base_values(self, vmin3, droop_class, expected_high, expected_skip):
        assert (
            vmin3.base_vmin_mv(FrequencyClass.HIGH, droop_class)
            == expected_high
        )
        assert (
            vmin3.base_vmin_mv(FrequencyClass.SKIP, droop_class)
            == expected_skip
        )

    def test_divide_falls_back_to_skip_on_xgene3(self, vmin3):
        assert vmin3.base_vmin_mv(FrequencyClass.DIVIDE, 0) == 770

    def test_droop_class_out_of_range(self, vmin3):
        with pytest.raises(ConfigurationError):
            vmin3.base_vmin_mv(FrequencyClass.HIGH, 4)


class TestConfigurationEffects:
    def test_more_pmds_raise_vmin(self, vmin3, spec3):
        few = vmin3.safe_vmin_mv(
            spec3.fmax_hz, cores_for(spec3, 8, Allocation.CLUSTERED)
        )
        many = vmin3.safe_vmin_mv(
            spec3.fmax_hz, cores_for(spec3, 8, Allocation.SPREADED)
        )
        assert many > few

    def test_lower_frequency_lowers_vmin(self, vmin3, spec3):
        cores = cores_for(spec3, 32, Allocation.CLUSTERED)
        high = vmin3.safe_vmin_mv(spec3.fmax_hz, cores)
        low = vmin3.safe_vmin_mv(spec3.half_frequency_hz, cores)
        assert low < high

    def test_xgene2_clock_division_is_largest_drop(self, vmin2, spec2):
        cores = cores_for(spec2, 8, Allocation.CLUSTERED)
        at_24 = vmin2.safe_vmin_mv(ghz(2.4), cores)
        at_12 = vmin2.safe_vmin_mv(ghz(1.2), cores)
        at_09 = vmin2.safe_vmin_mv(900 * MHZ, cores)
        assert at_24 > at_12 > at_09
        # Clock division (1.2 -> 0.9) is a far larger drop than clock
        # skipping (2.4 -> 1.2) - Section II.B / Fig. 10.
        assert (at_12 - at_09) > 2 * (at_24 - at_12)

    def test_xgene3_sub_half_same_as_half(self, vmin3, spec3):
        # Section II.B: X-Gene 3 frequencies below 1.5 GHz share the
        # 1.5 GHz Vmin.
        cores = cores_for(spec3, 32, Allocation.CLUSTERED)
        assert vmin3.safe_vmin_mv(
            375 * MHZ, cores
        ) == vmin3.safe_vmin_mv(spec3.half_frequency_hz, cores)

    def test_vmin_never_exceeds_nominal(self, vmin2, spec2):
        vmin = vmin2.safe_vmin_mv(
            spec2.fmax_hz, (0,), workload_delta_mv=100.0
        )
        assert vmin <= spec2.nominal_voltage_mv

    def test_same_threads_spreaded_equals_max_threads_class(
        self, vmin3, spec3
    ):
        # Fig. 5: 16T(spreaded) behaves like 32T (both 16 PMDs).
        full = vmin3.evaluate(
            spec3.fmax_hz, cores_for(spec3, 32, Allocation.CLUSTERED)
        )
        spread = vmin3.evaluate(
            spec3.fmax_hz, cores_for(spec3, 16, Allocation.SPREADED)
        )
        assert full.droop_class == spread.droop_class
        assert full.base_mv == spread.base_mv


class TestVariationFading:
    """The paper's central finding: variation fades with core count."""

    def test_attenuation_monotone(self):
        values = [variation_attenuation(n) for n in range(1, 33)]
        assert values == sorted(values, reverse=True)
        assert values[0] == 1.0
        assert values[-1] < 0.1

    def test_single_core_sees_full_variation(self, vmin2):
        lo = vmin2.safe_vmin_mv(ghz(2.4), (4,), workload_delta_mv=-20)
        hi = vmin2.safe_vmin_mv(ghz(2.4), (1,), workload_delta_mv=20)
        # Single-core: tens of mV of spread (Fig. 4).
        assert hi - lo > 30

    def test_multicore_spread_small(self, vmin2, spec2):
        # Fig. 3: max ~10 mV across all benchmarks at fixed config.
        cores = cores_for(spec2, 8, Allocation.CLUSTERED)
        values = [
            vmin2.safe_vmin_mv(ghz(2.4), cores, p.vmin_delta_mv)
            for p in characterization_set()
        ]
        assert max(values) - min(values) <= 10.0

    def test_breakdown_reports_attenuation(self, vmin2):
        single = vmin2.evaluate(ghz(2.4), (0,))
        full = vmin2.evaluate(ghz(2.4), tuple(range(8)))
        assert single.attenuation == 1.0
        assert full.attenuation < 0.1


class TestFactorDecomposition:
    """Fig. 10 reproduction straight from the model."""

    def test_xgene2_factors(self, vmin2):
        factors = vmin2.factor_decomposition()
        assert factors["workload"] == pytest.approx(0.01, abs=0.005)
        assert factors["core_allocation"] == pytest.approx(0.04, abs=0.01)
        assert factors["clock_skipping"] == pytest.approx(0.03, abs=0.01)
        assert factors["clock_division"] == pytest.approx(0.12, abs=0.015)

    def test_xgene3_has_no_division_factor(self, vmin3):
        assert vmin3.factor_decomposition()["clock_division"] == 0.0


class TestChipToChipVariation:
    def test_different_seeds_differ(self, spec2):
        a = VminModel(spec2, silicon_seed=1)
        b = VminModel(spec2, silicon_seed=2)
        vmins_a = [a.safe_vmin_mv(ghz(2.4), (c,)) for c in range(8)]
        vmins_b = [b.safe_vmin_mv(ghz(2.4), (c,)) for c in range(8)]
        assert vmins_a != vmins_b

    def test_same_seed_reproducible(self, spec3):
        a = VminModel(spec3, silicon_seed=9)
        b = VminModel(spec3, silicon_seed=9)
        assert a.safe_vmin_mv(spec3.fmax_hz, (5,)) == b.safe_vmin_mv(
            spec3.fmax_hz, (5,)
        )

    def test_unknown_platform_rejected(self, spec2):
        bad = spec2.__class__(
            **{**spec2.__dict__, "name": "Mystery"}
        )
        with pytest.raises(ConfigurationError):
            VminModel(bad)
