"""Validity checks for the GitHub Actions pipeline.

``actionlint`` is not vendored, so these tests act as the workflow's
parse check: the YAML must load, and the jobs the project relies on
(test matrix, lint, benchmark smoke, run-all verification) must keep
their guarantees.
"""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = Path(__file__).parent.parent / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow():
    assert WORKFLOW.is_file(), "CI workflow missing"
    return yaml.safe_load(WORKFLOW.read_text())


def _steps_text(job):
    return "\n".join(
        str(step.get("run", "")) for step in job.get("steps", [])
    )


def test_workflow_parses_with_expected_jobs(workflow):
    assert set(workflow["jobs"]) >= {
        "test",
        "lint",
        "lint-invariants",
        "platform-matrix",
        "bench-smoke",
        "verify",
    }
    # YAML 1.1 parses the bare `on:` trigger key as boolean True.
    triggers = workflow.get("on", workflow.get(True))
    assert "push" in triggers and "pull_request" in triggers


def test_test_job_matrix_covers_supported_pythons(workflow):
    matrix = workflow["jobs"]["test"]["strategy"]["matrix"]
    assert matrix["python-version"] == ["3.10", "3.11", "3.12", "3.13"]
    assert "python -m pytest -x -q" in _steps_text(workflow["jobs"]["test"])


def test_workflow_cancels_superseded_pr_runs(workflow):
    concurrency = workflow["concurrency"]
    assert "github.ref" in concurrency["group"]
    assert "pull_request" in str(concurrency["cancel-in-progress"])


def test_installing_jobs_cache_pip(workflow):
    for name, job in workflow["jobs"].items():
        if not any(
            "pip install" in str(step.get("run", ""))
            for step in job["steps"]
        ):
            continue
        caches = [
            step
            for step in job["steps"]
            if "actions/cache" in str(step.get("uses", ""))
        ]
        assert caches, f"job {name!r} installs without a pip cache"
        with_block = caches[0]["with"]
        assert with_block["path"] == "~/.cache/pip"
        assert "hashFiles('pyproject.toml')" in with_block["key"]


def test_lint_job_runs_ruff(workflow):
    text = _steps_text(workflow["jobs"]["lint"])
    assert "ruff check" in text
    assert "ruff format --check" in text


def test_lint_invariants_job_runs_reprolint_and_mypy(workflow):
    job = workflow["jobs"]["lint-invariants"]
    text = _steps_text(job)
    # Ephemeral runners: always the full, cache-free sweep.
    assert "python -m reprolint src tests --no-cache --format github" in text
    assert "python -m mypy" in text
    # reprolint must run before anything is installed: it is the same
    # stdlib-only invocation the pre-commit hook uses.
    runs = [str(step.get("run", "")) for step in job["steps"]]
    reprolint_idx = next(
        i for i, run in enumerate(runs) if "reprolint" in run
    )
    install_idx = next(
        i for i, run in enumerate(runs) if "pip install" in run
    )
    assert reprolint_idx < install_idx


def test_lint_invariants_job_uploads_sarif(workflow):
    job = workflow["jobs"]["lint-invariants"]
    text = _steps_text(job)
    assert "--format sarif" in text
    assert "> reprolint.sarif" in text
    uploads = [
        step
        for step in job["steps"]
        if "codeql-action/upload-sarif" in str(step.get("uses", ""))
    ]
    assert uploads, "lint-invariants must upload the SARIF report"
    upload = uploads[0]
    # Findings must still reach code scanning when the annotation step
    # already failed the job.
    assert str(upload.get("if", "")) == "always()"
    assert upload["with"]["sarif_file"] == "reprolint.sarif"
    assert upload["with"]["category"] == "reprolint"
    assert job["permissions"]["security-events"] == "write"


def test_lint_invariants_job_validates_spec_files(workflow):
    text = _steps_text(workflow["jobs"]["lint-invariants"])
    assert "repro platform validate" in text


def test_platform_matrix_job_smokes_spec_file_platform(workflow):
    job = workflow["jobs"]["platform-matrix"]
    text = _steps_text(job)
    assert "repro platform validate" in text
    # The whole registry must run on a platform that exists only as a
    # declarative spec file, and do so deterministically.
    assert "--platform xgene3-xl" in text
    assert "diff run_all_xl.txt run_all_xl_warm.txt" in text
    assert "timeout " in text


def test_platform_matrix_job_smokes_policy_bundles(workflow):
    job = workflow["jobs"]["platform-matrix"]
    text = _steps_text(job)
    # policy x platform: the registry-resolved ED²P bundle (whose
    # operating points are derived, not hard-coded) must drive the full
    # suite on the spec-file-only chip — cold and warm byte-identical.
    assert "repro policy show ed2p --platform xgene3-xl" in text
    assert "--platform xgene3-xl --policy ed2p" in text
    assert "tests/policies" in text


def test_bench_smoke_job_is_timeout_guarded(workflow):
    job = workflow["jobs"]["bench-smoke"]
    assert job["timeout-minutes"] <= 30
    text = _steps_text(job)
    assert "timeout " in text
    assert "--benchmark-disable" in text


def test_bench_regression_job_gates_on_committed_baseline(workflow):
    job = workflow["jobs"]["bench-regression"]
    text = _steps_text(job)
    assert "--benchmark-json=bench_results.json" in text
    assert "compare_benchmarks.py compare" in text
    assert "baseline_medians.json" in text
    uploads = [
        step
        for step in job["steps"]
        if "upload-artifact" in str(step.get("uses", ""))
    ]
    paths = [step["with"]["path"] for step in uploads]
    assert "bench_results.json" in paths


def test_bench_regression_job_uploads_telemetry_snapshot(workflow):
    job = workflow["jobs"]["bench-regression"]
    assert "TELEMETRY_SNAPSHOT_OUT=telemetry_snapshot.json" in _steps_text(
        job
    )
    uploads = [
        step
        for step in job["steps"]
        if "upload-artifact" in str(step.get("uses", ""))
    ]
    paths = [step["with"]["path"] for step in uploads]
    assert "telemetry_snapshot.json" in paths


def test_every_job_has_a_timeout(workflow):
    for name, job in workflow["jobs"].items():
        assert "timeout-minutes" in job, f"job {name!r} lacks a timeout"


def test_verify_job_checks_determinism_and_cache(workflow):
    text = _steps_text(workflow["jobs"]["verify"])
    assert "repro run-all --jobs 2" in text
    assert "--cache-dir" in text
    assert "diff tests/golden/run_all_xgene2.txt" in text
    assert "diff run_all.txt run_all_warm.txt" in text


def test_verify_job_gates_on_structured_manifest(workflow):
    job = workflow["jobs"]["verify"]
    text = _steps_text(job)
    # The cache-hit gate reads the schema-validated manifest, not a
    # regex scrape of the human summary table.
    assert "--summary-json manifest_cold.json" in text
    assert "--summary-json manifest_warm.json" in text
    assert "repro telemetry check manifest_warm.json --min-hit-rate 0.5" in text
    assert "repro telemetry check manifest_cold.json" in text
    assert "import re" not in text
    uploads = [
        step
        for step in job["steps"]
        if "upload-artifact" in str(step.get("uses", ""))
    ]
    assert uploads, "verify job must upload the run manifests"
    paths = str(uploads[0]["with"]["path"])
    assert "manifest_cold.json" in paths
    assert "manifest_warm.json" in paths
