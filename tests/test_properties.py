"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.allocation import Allocation, cores_for, pick_free_cores
from repro.perf.contention import contention_factor, l2_sharing_factor
from repro.perf.model import (
    bandwidth_demand_gbs,
    execution_state,
    solo_slowdown,
)
from repro.platform.specs import xgene2_spec, xgene3_spec
from repro.power.energy import EnergyMeter, ed2p, edp
from repro.power.model import PowerModel
from repro.platform.chip import ChipState
from repro.sim.engine import EventQueue
from repro.sim.tracing import moving_average
from repro.vmin.droop import droop_bin_index, droop_ladder
from repro.vmin.faults import FaultModel
from repro.vmin.model import VminModel, variation_attenuation
from repro.workloads.profiles import BenchmarkProfile, Suite

SPEC2 = xgene2_spec()
SPEC3 = xgene3_spec()
VMIN3 = VminModel(SPEC3)
FAULTS = FaultModel()
POWER3 = PowerModel(SPEC3)


def profiles(draw):
    return BenchmarkProfile(
        name="gen",
        suite=Suite.SPEC_CPU2006,
        parallel=draw(st.booleans()),
        ref_time_s=draw(st.floats(1.0, 500.0)),
        mem_fraction=draw(st.floats(0.0, 1.0)),
        l3_rate_per_mcycles=draw(st.floats(0.0, 20000.0)),
        bandwidth_gbs=draw(st.floats(0.0, 10.0)),
        l2_sensitivity=draw(st.floats(0.0, 1.0)),
        activity=draw(st.floats(0.1, 1.5)),
        vmin_delta_mv=draw(st.floats(-20.0, 20.0)),
    )


profile_strategy = st.composite(profiles)()

freq_strategy = st.sampled_from(SPEC3.frequency_steps())
nthreads_strategy = st.integers(1, SPEC3.n_cores)
allocation_strategy = st.sampled_from(list(Allocation))


class TestAllocationProperties:
    @given(nthreads_strategy, allocation_strategy)
    def test_cores_unique_and_in_range(self, nthreads, allocation):
        cores = cores_for(SPEC3, nthreads, allocation)
        assert len(cores) == nthreads
        assert len(set(cores)) == nthreads
        assert all(0 <= c < SPEC3.n_cores for c in cores)

    @given(nthreads_strategy)
    def test_spreaded_uses_at_least_as_many_pmds(self, nthreads):
        spread = cores_for(SPEC3, nthreads, Allocation.SPREADED)
        packed = cores_for(SPEC3, nthreads, Allocation.CLUSTERED)

        def pmds(cores):
            return len({SPEC3.pmd_of_core(c) for c in cores})

        assert pmds(spread) >= pmds(packed)

    @given(
        st.sets(st.integers(0, 31), min_size=4, max_size=31),
        st.integers(1, 4),
        allocation_strategy,
    )
    def test_pick_free_cores_respects_free_set(
        self, free, nthreads, allocation
    ):
        free = sorted(free)
        if len(free) < nthreads:
            return
        chosen = pick_free_cores(SPEC3, free, nthreads, allocation)
        assert set(chosen) <= set(free)
        assert len(set(chosen)) == nthreads


class TestDroopProperties:
    @given(st.integers(1, 16))
    def test_bin_index_monotone_in_pmds(self, pmds):
        if pmds < SPEC3.n_pmds:
            assert droop_bin_index(SPEC3, pmds) <= droop_bin_index(
                SPEC3, pmds + 1
            )

    @given(st.integers(1, 16))
    def test_bin_index_within_ladder(self, pmds):
        assert 0 <= droop_bin_index(SPEC3, pmds) < len(
            droop_ladder(SPEC3)
        )


class TestVminProperties:
    @given(
        freq_strategy,
        st.sets(st.integers(0, 31), min_size=1, max_size=32),
        st.floats(-20.0, 20.0),
    )
    def test_vmin_bounded(self, freq, cores, delta):
        vmin = VMIN3.safe_vmin_mv(freq, cores, delta)
        assert 700 <= vmin <= SPEC3.nominal_voltage_mv

    @given(
        freq_strategy,
        st.sets(st.integers(0, 31), min_size=1, max_size=16),
    )
    def test_adding_cores_never_lowers_base_requirement(self, freq, cores):
        # Adding a core can only keep or grow the utilized-PMD set, so
        # the droop class (and base Vmin) never shrinks.
        before = VMIN3.evaluate(freq, cores)
        extra = (max(cores) + 1) % SPEC3.n_cores
        after = VMIN3.evaluate(freq, set(cores) | {extra})
        assert after.droop_class >= before.droop_class
        assert after.base_mv >= before.base_mv

    @given(st.integers(1, 64))
    def test_attenuation_in_unit_interval(self, n):
        assert 0.0 < variation_attenuation(n) <= 1.0


class TestFaultProperties:
    @given(
        st.floats(600.0, 900.0),
        st.floats(700.0, 870.0),
        st.integers(0, 3),
    )
    def test_pfail_is_probability(self, voltage, vmin, klass):
        p = FAULTS.pfail(voltage, vmin, klass)
        assert 0.0 <= p <= 1.0

    @given(
        st.floats(700.0, 870.0),
        st.integers(0, 3),
        st.floats(0.0, 60.0),
        st.floats(0.0, 60.0),
    )
    def test_pfail_monotone(self, vmin, klass, depth_a, depth_b):
        lo, hi = sorted((depth_a, depth_b))
        assert FAULTS.pfail(vmin - hi, vmin, klass) >= FAULTS.pfail(
            vmin - lo, vmin, klass
        )

    @given(
        st.floats(600.0, 870.0),
        st.floats(700.0, 870.0),
        st.integers(0, 3),
    )
    def test_outcome_mix_normalised(self, voltage, vmin, klass):
        mix = FAULTS.outcome_mix(voltage, vmin, klass)
        assert math.isclose(sum(mix.values()), 1.0, rel_tol=1e-9)
        assert all(0 <= share <= 1 for share in mix.values())


class TestPerfProperties:
    @given(profile_strategy, freq_strategy)
    def test_slowdown_at_least_memory_floor(self, profile, freq):
        slow = solo_slowdown(profile, SPEC3, freq)
        assert slow >= profile.mem_fraction * 0.99

    @given(profile_strategy, freq_strategy)
    def test_demand_non_negative_and_bounded(self, profile, freq):
        demand = bandwidth_demand_gbs(profile, SPEC3, freq)
        assert 0.0 <= demand <= profile.bandwidth_gbs * 1.01

    @given(
        profile_strategy,
        freq_strategy,
        st.integers(1, 32),
        st.booleans(),
        st.floats(1.0, 5.0),
    )
    def test_execution_state_invariants(
        self, profile, freq, nthreads, shares, contention
    ):
        state = execution_state(
            profile, SPEC3, freq, nthreads, shares, contention
        )
        assert state.duration_s > 0
        assert 0.0 <= state.cpu_share <= 1.0
        assert state.l3_rate_per_mcycles >= 0.0
        assert state.effective_activity > 0.0

    @given(
        profile_strategy,
        st.integers(1, 32),
        st.booleans(),
        st.floats(1.0, 5.0),
    )
    def test_lower_frequency_never_faster(
        self, profile, nthreads, shares, contention
    ):
        fast = execution_state(
            profile, SPEC3, SPEC3.fmax_hz, nthreads, shares, contention
        )
        slow = execution_state(
            profile, SPEC3, SPEC3.fmin_hz, nthreads, shares, contention
        )
        assert slow.duration_s >= fast.duration_s

    @given(st.lists(st.floats(0.0, 50.0), max_size=40))
    def test_contention_factor_at_least_one(self, demands):
        assert contention_factor(SPEC3, demands) >= 1.0

    @given(st.floats(0.0, 1.0), st.booleans())
    def test_l2_factor_at_least_one(self, sensitivity, shares):
        assert l2_sharing_factor(sensitivity, shares) >= 1.0


class TestPowerProperties:
    @given(
        st.integers(700, 870),
        st.sets(st.integers(0, 31), max_size=32),
        st.floats(0.0, 1.0),
    )
    def test_power_positive_and_voltage_monotone(
        self, voltage, cores, util
    ):
        state_lo = ChipState(
            spec=SPEC3,
            voltage_mv=voltage,
            pmd_frequencies_hz=(SPEC3.fmax_hz,) * SPEC3.n_pmds,
            active_cores=frozenset(cores),
        )
        state_hi = ChipState(
            spec=SPEC3,
            voltage_mv=SPEC3.nominal_voltage_mv,
            pmd_frequencies_hz=(SPEC3.fmax_hz,) * SPEC3.n_pmds,
            active_cores=frozenset(cores),
        )
        loads = {c: 1.0 for c in cores}
        lo = POWER3.chip_power(state_lo, loads, util).total_w
        hi = POWER3.chip_power(state_hi, loads, util).total_w
        assert 0 < lo <= hi

    @given(
        st.lists(
            st.tuples(st.floats(0.0, 100.0), st.floats(0.0, 10.0)),
            max_size=50,
        )
    )
    def test_energy_meter_matches_sum(self, intervals):
        meter = EnergyMeter()
        expected = 0.0
        for power, dt in intervals:
            meter.accumulate(power, dt)
            expected += power * dt
        assert math.isclose(
            meter.energy_j, expected, rel_tol=1e-9, abs_tol=1e-9
        )

    @given(st.floats(0.1, 1e6), st.floats(0.1, 1e5))
    def test_ed2p_edp_relation(self, energy, delay):
        assert math.isclose(ed2p(energy, delay), edp(energy, delay) * delay)


class TestEngineProperties:
    @given(
        st.lists(
            st.floats(0.0, 1000.0), min_size=1, max_size=50
        )
    )
    def test_events_pop_in_time_order(self, times):
        queue = EventQueue()
        for t in times:
            queue.schedule(t, "e")
        popped = [queue.pop().time_s for _ in range(len(times))]
        assert popped == sorted(popped)

    @given(
        st.lists(st.floats(-100.0, 100.0), min_size=1, max_size=60),
        st.integers(1, 10),
    )
    def test_moving_average_bounded_by_extremes(self, values, window):
        averaged = moving_average(values, window)
        assert len(averaged) == len(values)
        assert min(values) - 1e-9 <= min(averaged)
        assert max(averaged) <= max(values) + 1e-9
