"""End-to-end integration tests across the whole stack."""

import pytest

from repro import (
    Chip,
    OnlineMonitoringDaemon,
    ServerSystem,
    ServerWorkloadGenerator,
    get_spec,
    run_evaluation,
)
from repro.core.monitoring import MonitoringDaemon, PerfLikeReader
from repro.core.policy import VminPolicyTable
from repro.policies.governors import BaselinePolicy
from repro.sim.process import WorkloadClass
from repro.vmin.characterize import VminCampaign
from repro.allocation import Allocation


class TestCharacterizationToPolicyToDaemon:
    """The paper's full loop: characterize -> build table -> run daemon."""

    def test_policy_built_from_campaign_keeps_daemon_safe(self):
        spec = get_spec("xgene2")
        policy = VminPolicyTable.from_characterization(spec)
        workload = ServerWorkloadGenerator(max_cores=8, seed=13).generate(
            400.0
        )
        chip = Chip(spec)
        daemon = OnlineMonitoringDaemon(spec, policy=policy)
        result = ServerSystem(chip, workload, daemon).run()
        assert result.violations == []
        assert all(p.finish_s is not None for p in result.processes)

    def test_campaign_agrees_with_policy_floor(self):
        spec = get_spec("xgene3")
        policy = VminPolicyTable.from_characterization(spec)
        campaign = VminCampaign(spec)
        point = campaign.point("CG", 32, Allocation.CLUSTERED, spec.fmax_hz)
        measured = campaign.measure_safe_vmin(point)
        # The daemon's level for this configuration covers the campaign
        # measurement.
        assert (
            policy.safe_voltage_mv(16, spec.fmax_hz)
            >= measured.safe_vmin_mv
        )


class TestCrossConfigConsistency:
    @pytest.fixture(scope="class")
    def evaluation(self):
        return run_evaluation("xgene3", duration_s=900.0, seed=21)

    def test_work_conserved_across_configs(self, evaluation):
        # Every configuration completes the same set of jobs.
        job_sets = {
            name: {p.pid for p in result.processes if p.finish_s}
            for name, result in evaluation.results.items()
        }
        assert len(set(map(frozenset, job_sets.values()))) == 1

    def test_baseline_fastest_or_equal(self, evaluation):
        base = evaluation.results["baseline"].makespan_s
        for name, result in evaluation.results.items():
            assert result.makespan_s >= base * 0.999

    def test_voltage_configs_use_fewer_joules(self, evaluation):
        results = evaluation.results
        assert (
            results["optimal"].energy_j
            < results["placement"].energy_j
        )
        assert (
            results["safe_vmin"].energy_j
            < results["baseline"].energy_j
        )

    def test_daemon_counts_transitions(self, evaluation):
        optimal = evaluation.results["optimal"]
        assert optimal.voltage_transitions > 0
        assert optimal.frequency_transitions > 0
        baseline = evaluation.results["baseline"]
        assert baseline.voltage_transitions == 0


class TestNoisyMonitoringIntegration:
    def test_daemon_with_perf_reader_still_safe(self):
        # Noisy classification can waste energy, never safety: voltage
        # floors come from the policy table, not from the classes.
        spec = get_spec("xgene2")
        workload = ServerWorkloadGenerator(max_cores=8, seed=17).generate(
            300.0
        )
        chip = Chip(spec)
        daemon = OnlineMonitoringDaemon(
            spec,
            monitor=MonitoringDaemon(reader=PerfLikeReader(0.05, seed=4)),
        )
        result = ServerSystem(chip, workload, daemon).run()
        assert result.violations == []


class TestClassificationAgainstGroundTruth:
    def test_daemon_classes_match_profiles(self):
        spec = get_spec("xgene3")
        workload = ServerWorkloadGenerator(max_cores=32, seed=23).generate(
            1200.0
        )
        chip = Chip(spec)
        daemon = OnlineMonitoringDaemon(spec)
        result = ServerSystem(chip, workload, daemon).run()
        checked = mismatches = 0
        for process in result.processes:
            if process.observed_class is WorkloadClass.UNKNOWN:
                continue
            checked += 1
            if process.observed_class is not process.reference_class:
                mismatches += 1
        assert checked > 10
        # Contention shifts PMU rates, so a few borderline programs may
        # legitimately flip; the bulk must match.
        assert mismatches <= 0.2 * checked


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        spec = get_spec("xgene2")
        workload = ServerWorkloadGenerator(max_cores=8, seed=29).generate(
            300.0
        )

        def run_once():
            chip = Chip(spec)
            daemon = OnlineMonitoringDaemon(spec)
            return ServerSystem(chip, workload, daemon).run()

        a, b = run_once(), run_once()
        assert a.energy_j == b.energy_j
        assert a.makespan_s == b.makespan_s
        assert [p.finish_s for p in a.processes] == [
            p.finish_s for p in b.processes
        ]

    def test_baseline_vs_daemon_workload_identical(self):
        spec = get_spec("xgene2")
        workload = ServerWorkloadGenerator(max_cores=8, seed=29).generate(
            300.0
        )
        base = ServerSystem(
            Chip(spec), workload, BaselinePolicy()
        ).run()
        opt = ServerSystem(
            Chip(spec), workload, OnlineMonitoringDaemon(spec)
        ).run()
        assert [p.arrival_s for p in base.processes] == [
            p.arrival_s for p in opt.processes
        ]
