"""End-to-end tests for the custom-platform registration API."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.specs import (
    CacheSpec,
    ChipSpec,
    FrequencyClass,
    get_spec,
    register_platform,
)
from repro.platform.thermal import ThermalParams, register_thermal_params
from repro.power.model import PowerParams, register_power_params
from repro.units import ghz, mhz
from repro.vmin.model import VminModel, register_vmin_table


def toy_spec() -> ChipSpec:
    return ChipSpec(
        name="Toy-8",
        n_cores=8,
        cores_per_pmd=2,
        fmax_hz=ghz(2.0),
        fmin_hz=mhz(250),
        nominal_voltage_mv=900,
        min_voltage_mv=600,
        tdp_w=20.0,
        technology_nm=14,
        caches=CacheSpec(32768, 32768, 262144, 8 * 2**20, True),
        memory_bandwidth_bps=30e9,
    )


@pytest.fixture(scope="module")
def registered():
    key = register_platform(toy_spec)
    spec = toy_spec()
    register_vmin_table(
        spec,
        {
            FrequencyClass.HIGH: (780, 800, 815),
            FrequencyClass.SKIP: (760, 780, 795),
            FrequencyClass.DIVIDE: (700, 720, 735),
        },
    )
    register_power_params(
        spec.name,
        PowerParams(
            uncore_w=1.5,
            core_dyn_max_w=1.5,
            core_leak_w=0.15,
            pmd_overhead_w=0.3,
            uncore_on_rail=True,
            external_w=0.5,
        ),
    )
    register_thermal_params(
        spec.name, ThermalParams(resistance_c_per_w=1.0, time_constant_s=8.0)
    )
    return key


class TestRegistration:
    def test_lookup_after_registration(self, registered):
        assert get_spec(registered).name == "Toy-8"
        assert get_spec("Toy-8").n_cores == 8

    def test_factory_must_return_spec(self):
        with pytest.raises(ConfigurationError):
            register_platform(lambda: "not a spec")

    def test_vmin_table_row_length_validated(self):
        spec = toy_spec()
        with pytest.raises(ConfigurationError):
            register_vmin_table(
                spec,
                {
                    FrequencyClass.HIGH: (780, 800),  # needs 3 classes
                    FrequencyClass.SKIP: (760, 780),
                },
            )

    def test_vmin_table_monotone_validated(self):
        spec = toy_spec()
        with pytest.raises(ConfigurationError):
            register_vmin_table(
                spec,
                {
                    FrequencyClass.HIGH: (800, 780, 815),
                    FrequencyClass.SKIP: (760, 780, 795),
                },
            )

    def test_vmin_table_needs_core_classes(self):
        spec = toy_spec()
        with pytest.raises(ConfigurationError):
            register_vmin_table(
                spec, {FrequencyClass.HIGH: (780, 800, 815)}
            )

    def test_vmin_above_nominal_rejected(self):
        spec = toy_spec()
        with pytest.raises(ConfigurationError):
            register_vmin_table(
                spec,
                {
                    FrequencyClass.HIGH: (780, 800, 950),
                    FrequencyClass.SKIP: (760, 780, 795),
                },
            )


class TestEndToEnd:
    def test_vmin_model_works(self, registered):
        spec = get_spec(registered)
        model = VminModel(spec)
        vmin = model.safe_vmin_mv(spec.fmax_hz, range(8))
        assert 810 <= vmin <= 830

    def test_full_evaluation_runs(self, registered):
        from repro.core import run_evaluation

        evaluation = run_evaluation(registered, duration_s=240.0, seed=3)
        rows = {r.config: r for r in evaluation.rows()}
        assert rows["optimal"].energy_savings_pct > 0
        for result in evaluation.results.values():
            assert result.violations == []

    def test_thermal_model_available(self, registered):
        from repro.platform.thermal import ThermalModel

        thermal = ThermalModel(get_spec(registered))
        assert thermal.steady_state_c(10.0) > thermal.ambient_c
