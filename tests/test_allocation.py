"""Tests for clustered/spreaded core allocation (paper Fig. 2)."""

import pytest

from repro.allocation import (
    Allocation,
    clustered_cores,
    cores_for,
    pick_free_cores,
    spreaded_cores,
    utilized_pmd_count,
    utilized_pmds,
)
from repro.errors import ConfigurationError, PlacementError


class TestClustered:
    def test_consecutive_cores(self, spec2):
        assert clustered_cores(spec2, 4) == (0, 1, 2, 3)

    def test_pmd_count_is_ceil_half(self, spec2):
        assert utilized_pmd_count(spec2, 1, Allocation.CLUSTERED) == 1
        assert utilized_pmd_count(spec2, 2, Allocation.CLUSTERED) == 1
        assert utilized_pmd_count(spec2, 3, Allocation.CLUSTERED) == 2
        assert utilized_pmd_count(spec2, 4, Allocation.CLUSTERED) == 2

    def test_xgene3_16t_clustered_uses_8_pmds(self, spec3):
        # Table II: 16T(clustered) -> 8 PMDs.
        assert utilized_pmd_count(spec3, 16, Allocation.CLUSTERED) == 8


class TestSpreaded:
    def test_one_thread_per_pmd(self, spec2):
        cores = spreaded_cores(spec2, 4)
        assert cores == (0, 2, 4, 6)
        assert len(utilized_pmds(spec2, cores)) == 4

    def test_xgene3_16t_spreaded_uses_16_pmds(self, spec3):
        # Table II: 16T(spreaded) -> 16 PMDs.
        assert utilized_pmd_count(spec3, 16, Allocation.SPREADED) == 16

    def test_overflow_fills_second_cores(self, spec2):
        cores = spreaded_cores(spec2, 6)
        assert set(cores) == {0, 2, 4, 6, 1, 3}

    def test_full_chip_equals_clustered(self, spec2):
        assert set(spreaded_cores(spec2, 8)) == set(
            clustered_cores(spec2, 8)
        )


class TestCoresFor:
    def test_dispatch(self, spec2):
        assert cores_for(spec2, 2, Allocation.CLUSTERED) == (0, 1)
        assert cores_for(spec2, 2, Allocation.SPREADED) == (0, 2)

    def test_nthreads_bounds(self, spec2):
        with pytest.raises(ConfigurationError):
            cores_for(spec2, 0, Allocation.CLUSTERED)
        with pytest.raises(ConfigurationError):
            cores_for(spec2, 9, Allocation.CLUSTERED)


class TestPickFreeCores:
    def test_clustered_prefers_partially_used_pmds(self, spec2):
        # Core 1 is busy; clustered should pick its sibling (core 0)
        # before opening a fresh PMD.
        free = [0, 2, 3, 4, 5, 6, 7]
        chosen = pick_free_cores(spec2, free, 1, Allocation.CLUSTERED)
        assert chosen == (0,)

    def test_clustered_packs_pairs(self, spec2):
        chosen = pick_free_cores(
            spec2, range(8), 4, Allocation.CLUSTERED
        )
        assert len(utilized_pmds(spec2, chosen)) == 2

    def test_spreaded_prefers_fresh_pmds(self, spec2):
        # Cores 0 and 1 busy (PMD0 full); the spreaded pick should use
        # fresh PMDs 1, 2, 3.
        free = [2, 3, 4, 5, 6, 7]
        chosen = pick_free_cores(spec2, free, 3, Allocation.SPREADED)
        assert len(utilized_pmds(spec2, chosen)) == 3

    def test_spreaded_on_empty_chip(self, spec3):
        chosen = pick_free_cores(
            spec3, range(32), 16, Allocation.SPREADED
        )
        assert len(utilized_pmds(spec3, chosen)) == 16

    def test_not_enough_free(self, spec2):
        with pytest.raises(PlacementError):
            pick_free_cores(spec2, [0, 1], 3, Allocation.CLUSTERED)

    def test_no_duplicates(self, spec3):
        chosen = pick_free_cores(
            spec3, range(32), 32, Allocation.CLUSTERED
        )
        assert len(set(chosen)) == 32

    def test_picks_only_free_cores(self, spec2):
        free = [1, 3, 5, 7]
        chosen = pick_free_cores(spec2, free, 2, Allocation.SPREADED)
        assert set(chosen) <= set(free)
