"""Tests for the one-shot reproduction report generator."""

import pytest

from repro.experiments import report
from repro.platform.specs import xgene2_spec, xgene3_spec


@pytest.fixture(scope="module")
def quick_report():
    # Short evaluation windows; skip the (slower) characterization part.
    return report.generate(
        duration_s=240.0, seed=5, include_characterization=False
    )


class TestReport:
    def test_markdown_skeleton(self, quick_report):
        assert quick_report.startswith("# Reproduction report")
        assert "## Energy and performance" in quick_report
        assert "## Evaluation (Tables III/IV)" in quick_report

    def test_both_platforms_present(self, quick_report):
        assert f"### {xgene2_spec().name}" in quick_report
        assert f"### {xgene3_spec().name}" in quick_report

    def test_paper_references_embedded(self, quick_report):
        assert "[25.2 %]" in quick_report
        assert "[22.3 %]" in quick_report

    def test_fig8_rows(self, quick_report):
        assert "| namd |" in quick_report
        assert "| CG |" in quick_report

    def test_characterization_section_optional(self, quick_report):
        assert "## Characterization" not in quick_report

    def test_full_report_includes_characterization(self):
        full = report.generate(
            duration_s=120.0, seed=5, include_characterization=True
        )
        assert "## Characterization" in full
        assert "droop bin" in full
