"""Tests for the traced Fig. 13 daemon flow."""

import pytest

from repro.experiments import fig13_flow


@pytest.fixture(scope="module")
def trace():
    return fig13_flow.run("xgene2")


class TestFlowSequence:
    def test_no_violations(self, trace):
        assert trace.violations == 0

    def test_every_edge_exercised(self, trace):
        kinds = set(trace.kinds())
        assert {
            "raise_voltage",
            "process_arrives",
            "placement",
            "settle_voltage",
            "class_change_retune",
            "process_exits",
        } <= kinds

    def test_raise_precedes_arrival(self, trace):
        kinds = trace.kinds()
        first_raise = kinds.index("raise_voltage")
        first_arrival = kinds.index("process_arrives")
        assert first_raise < first_arrival

    def test_placement_follows_arrival(self, trace):
        kinds = trace.kinds()
        assert kinds.index("placement") > kinds.index("process_arrives")

    def test_exits_settle_the_rail(self, trace):
        kinds = trace.kinds()
        last_exit = len(kinds) - 1 - kinds[::-1].index("process_exits")
        assert "settle_voltage" in kinds[last_exit:]

    def test_class_change_happens_in_place(self, trace):
        # The phased job flips class at least twice (unknown->memory,
        # memory->cpu at the boundary).
        assert trace.kinds().count("class_change_retune") >= 2

    def test_render(self, trace):
        text = trace.format()
        assert "daemon flow trace" in text
        assert "raise_voltage" in text
