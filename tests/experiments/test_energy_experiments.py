"""Shape tests for the energy/performance experiments (Figs. 7-9, 11, 12)."""

import pytest

from repro.allocation import Allocation
from repro.experiments import (
    fig7_allocation_energy as fig7,
    fig8_contention as fig8,
    fig9_l3c_rates as fig9,
    fig11_energy as fig11,
    fig12_ed2p as fig12,
)
from repro.experiments.energy_runner import EnergyRunner
from repro.units import ghz
from repro.workloads.suites import get_benchmark


@pytest.fixture(scope="module")
def fig7_result():
    return fig7.run("xgene2")


class TestFig7:
    def test_span_matches_paper_shape(self, fig7_result):
        low, high = fig7_result.span()
        # Paper: -9.6% .. +14.2%.
        assert -14 <= low <= -5
        assert 9 <= high <= 20

    def test_cpu_intensive_prefer_clustered(self, fig7_result):
        by_name = {r.benchmark: r for r in fig7_result.rows}
        for name in ("namd", "EP", "povray", "gamess", "hmmer"):
            assert by_name[name].diff_pct < 0

    def test_memory_intensive_prefer_spreaded(self, fig7_result):
        by_name = {r.benchmark: r for r in fig7_result.rows}
        for name in ("CG", "FT", "mcf", "milc", "lbm"):
            assert by_name[name].diff_pct > 0

    def test_sorted_rows_cpu_first(self, fig7_result):
        ordered = fig7_result.sorted_rows()
        fractions = [r.mem_fraction for r in ordered]
        assert fractions == sorted(fractions)

    def test_diff_trend_follows_memory_intensity(self, fig7_result):
        ordered = fig7_result.sorted_rows()
        first_quarter = [r.diff_pct for r in ordered[:6]]
        last_quarter = [r.diff_pct for r in ordered[-6:]]
        assert max(first_quarter) < min(last_quarter)


@pytest.fixture(scope="module")
def fig8_result():
    return fig8.run("xgene3")


class TestFig8:
    def test_cg_ft_most_memory_intensive(self, fig8_result):
        # Paper: "CG and FT ... are the most memory-intensive".
        worst = fig8_result.most_memory_intensive(5)
        assert "CG" in worst
        assert "FT" in worst or "mcf" in worst

    def test_namd_ep_most_cpu_intensive(self, fig8_result):
        best = fig8_result.most_cpu_intensive(5)
        assert "namd" in best
        assert "EP" in best

    def test_memory_bound_collapse(self, fig8_result):
        assert fig8_result.ratio_of("CG") < 0.5
        assert fig8_result.ratio_of("namd") > 0.95

    def test_all_ratios_in_unit_interval(self, fig8_result):
        for row in fig8_result.rows:
            assert 0 < row.ratio <= 1.0


@pytest.fixture(scope="module")
def fig9_result():
    return fig9.run("xgene3")


class TestFig9:
    def test_threshold_separates_expected_sets(self, fig9_result):
        mem = set(fig9_result.memory_intensive_set())
        assert {"CG", "FT", "IS", "MG", "mcf", "milc", "lbm"} <= mem
        assert {"namd", "EP", "hmmer", "gamess", "povray"}.isdisjoint(mem)

    def test_classes_stable_across_thread_counts(self, fig9_result):
        # Fig. 9: same classification at 32, 16 and 8 threads.
        assert fig9_result.classes_stable()

    def test_rates_positive(self, fig9_result):
        assert all(r.rate_per_mcycles > 0 for r in fig9_result.rows)

    def test_three_thread_configs(self, fig9_result):
        counts = {r.nthreads for r in fig9_result.rows}
        assert counts == {32, 16, 8}


@pytest.fixture(scope="module")
def fig11_xgene2():
    return fig11.run("xgene2")


@pytest.fixture(scope="module")
def fig12_xgene2():
    return fig12.run("xgene2")


@pytest.fixture(scope="module")
def fig12_xgene3():
    return fig12.run("xgene3")


class TestFig11:
    def test_grid_complete(self, fig11_xgene2):
        # 5 benchmarks x 3 thread options x 3 frequencies.
        assert len(fig11_xgene2.cells) == 45

    def test_xgene2_09ghz_wins_energy(self, fig11_xgene2):
        # Paper: "significant energy savings for all cases at 0.9 GHz".
        # Reproduces at 8 and 4 threads; at 2 threads our fixed platform
        # power amortizes over too little work for the CPU-bound pair
        # (recorded as a deviation in EXPERIMENTS.md).
        for name in ("namd", "EP", "milc", "CG", "FT"):
            for nthreads in (8, 4):
                assert fig11_xgene2.best_frequency(
                    name, nthreads
                ) == ghz(0.9)
        for name in ("milc", "CG", "FT"):
            assert fig11_xgene2.best_frequency(name, 2) == ghz(0.9)

    def test_memory_intensive_gain_at_half_clock(self, fig11_xgene2):
        # milc/CG/FT: 1.2 GHz beats 2.4 GHz on energy.
        for name in ("milc", "CG", "FT"):
            assert fig11_xgene2.energy_of(
                name, 8, ghz(1.2)
            ) < fig11_xgene2.energy_of(name, 8, ghz(2.4))

    def test_cpu_intensive_flat_at_half_clock(self, fig11_xgene2):
        # namd/EP: no observable gain from 2.4 -> 1.2 GHz.
        for name in ("namd", "EP"):
            assert fig11_xgene2.energy_of(
                name, 8, ghz(1.2)
            ) >= 0.95 * fig11_xgene2.energy_of(name, 8, ghz(2.4))

    def test_safe_voltage_used(self, fig11_xgene2, spec2):
        assert all(
            c.measurement.voltage_mv < spec2.nominal_voltage_mv
            for c in fig11_xgene2.cells
        )


class TestFig12:
    def test_cpu_intensive_best_at_max_frequency(self, fig12_xgene2):
        for name in ("namd", "EP"):
            for nthreads in (8, 4, 2):
                assert fig12_xgene2.best_frequency(
                    name, nthreads
                ) == ghz(2.4)

    def test_memory_intensive_best_at_low_frequency(self, fig12_xgene2):
        # The inversion reproduces fully in the contended max-threads
        # regime (see EXPERIMENTS.md for the low-thread-count deviation).
        for name in ("milc", "CG", "FT"):
            assert fig12_xgene2.best_frequency(name, 8) != ghz(2.4)

    def test_lines_converge_with_memory_intensity(self, fig12_xgene2):
        # Even where the inversion does not flip outright, the relative
        # ED2P cost of the half clock shrinks dramatically from the
        # CPU-intensive to the memory-intensive end.
        def tilt(name):
            return fig12_xgene2.ed2p_of(
                name, 4, ghz(1.2)
            ) / fig12_xgene2.ed2p_of(name, 4, ghz(2.4))

        assert tilt("CG") < 0.45 * tilt("namd")
        assert tilt("milc") < 0.45 * tilt("EP")

    def test_xgene3_same_split(self, fig12_xgene3):
        for name in ("namd", "EP"):
            assert fig12_xgene3.best_frequency(name, 32) == ghz(3.0)
        for name in ("milc", "CG", "FT"):
            assert fig12_xgene3.best_frequency(name, 32) == ghz(1.5)


class TestEnergyRunner:
    def test_normalization_only_for_replicated(self, spec3):
        runner = EnergyRunner(spec3)
        spec_run = runner.measure(
            get_benchmark("milc"), 4, Allocation.SPREADED
        )
        npb_run = runner.measure(
            get_benchmark("CG"), 4, Allocation.SPREADED
        )
        assert spec_run.normalized_energy_j == pytest.approx(
            spec_run.energy_j / 4
        )
        assert npb_run.normalized_energy_j == npb_run.energy_j

    def test_nominal_vs_safe_voltage(self, spec3):
        runner = EnergyRunner(spec3)
        nominal = runner.measure(
            get_benchmark("CG"), 8, Allocation.SPREADED, voltage="nominal"
        )
        safe = runner.measure(
            get_benchmark("CG"), 8, Allocation.SPREADED, voltage="safe"
        )
        assert safe.voltage_mv < nominal.voltage_mv
        assert safe.energy_j < nominal.energy_j
        assert safe.duration_s == nominal.duration_s

    def test_frequency_grid_per_platform(self, spec2, spec3):
        grid2 = EnergyRunner(spec2).frequency_grid()
        grid3 = EnergyRunner(spec3).frequency_grid()
        assert set(grid2) == {"max", "half", "divide"}
        assert set(grid3) == {"max", "half"}

    def test_thread_grid(self, spec3):
        assert EnergyRunner(spec3).thread_grid() == {
            "max": 32,
            "half": 16,
            "quarter": 8,
        }

    def test_unknown_voltage_mode(self, spec3):
        from repro.errors import ConfigurationError

        runner = EnergyRunner(spec3)
        with pytest.raises(ConfigurationError):
            runner.measure(
                get_benchmark("CG"), 8, Allocation.SPREADED,
                voltage="hopeful",
            )
