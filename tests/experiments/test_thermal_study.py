"""Tests for the thermal-margin study (environment extension)."""

import pytest

from repro.experiments import thermal_study


@pytest.fixture(scope="module")
def study():
    return thermal_study.run(
        "xgene3",
        ambients_c=(15.0, 45.0, 80.0),
        duration_s=600.0,
        seed=9,
    )


class TestThermalStudy:
    def test_hotter_ambient_hotter_junction(self, study):
        peaks = [r.peak_junction_c for r in study.rows]
        assert peaks == sorted(peaks)

    def test_hotter_ambient_more_energy(self, study):
        energies = [r.energy_j for r in study.rows]
        assert energies == sorted(energies)
        assert study.energy_increase_pct() > 5.0

    def test_cool_operation_safe(self, study):
        assert study.rows[0].violations == 0

    def test_extreme_heat_defeats_the_table(self, study):
        # At 80 C ambient the junction exceeds the calibration point by
        # more than the table's quantization + guard slack.
        assert study.rows[-1].violations > 0
        assert study.first_unsafe_ambient_c() == 80.0

    def test_guard_tracks_peak(self, study):
        guards = [r.guard_needed_mv for r in study.rows]
        assert guards == sorted(guards)
        assert guards[0] == 0.0

    def test_render(self, study):
        text = study.format()
        assert "Thermal-margin study" in text
        assert "guard needed" in text
