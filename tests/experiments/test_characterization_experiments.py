"""Shape tests for the characterization experiments (Figs. 3-6, 10)."""

import pytest

from repro.experiments import (
    fig3_vmin_characterization as fig3,
    fig4_core_variation as fig4,
    fig5_pfail as fig5,
    fig6_droops as fig6,
    fig10_factors as fig10,
)
from repro.units import ghz


@pytest.fixture(scope="module")
def fig3_xgene2():
    return fig3.run("xgene2")


@pytest.fixture(scope="module")
def fig3_xgene3():
    return fig3.run("xgene3")


class TestFig3:
    def test_covers_25_benchmarks(self, fig3_xgene2):
        names = {r.benchmark for r in fig3_xgene2.rows}
        assert len(names) == 25

    def test_grid_sizes(self, fig3_xgene2, fig3_xgene3):
        # XG2: 25 benchmarks x 2 thread options x 3 frequencies.
        assert len(fig3_xgene2.rows) == 25 * 2 * 3
        # XG3: 25 x 3 x 2.
        assert len(fig3_xgene3.rows) == 25 * 3 * 2

    def test_workload_spread_at_most_10mv(self, fig3_xgene2):
        # The paper's headline: "maximum difference is only 10 mV".
        for nthreads in (8, 4):
            for freq in (ghz(2.4), ghz(1.2), ghz(0.9)):
                assert (
                    fig3_xgene2.config_spread_mv(nthreads, freq) <= 10
                )

    def test_lower_frequency_lower_vmin(self, fig3_xgene2):
        v24 = fig3_xgene2.vmin_of("CG", 8, ghz(2.4))
        v12 = fig3_xgene2.vmin_of("CG", 8, ghz(1.2))
        v09 = fig3_xgene2.vmin_of("CG", 8, ghz(0.9))
        assert v24 > v12 > v09

    def test_clock_division_large_drop(self, fig3_xgene2):
        # ~12% of nominal between 1.2 and 0.9 GHz (Fig. 10).
        drop = fig3_xgene2.vmin_of("CG", 8, ghz(1.2)) - fig3_xgene2.vmin_of(
            "CG", 8, ghz(0.9)
        )
        assert 80 <= drop <= 160

    def test_xgene3_vmin_near_table2(self, fig3_xgene3):
        # 32T @ 3GHz: Table II says 830 mV (we allow the variation term).
        measured = fig3_xgene3.vmin_of("CG", 32, ghz(3.0))
        assert 820 <= measured <= 850

    def test_guardband_exposed(self, fig3_xgene3):
        assert all(r.guardband_mv >= 30 for r in fig3_xgene3.rows)


@pytest.fixture(scope="module")
def fig4_result():
    return fig4.run("xgene2")


class TestFig4:
    def test_pmd2_most_robust(self, fig4_result):
        assert fig4_result.most_robust_pmd() == 2

    def test_pmd0_or_1_most_sensitive(self, fig4_result):
        assert fig4_result.most_sensitive_pmd() in (0, 1)

    def test_core_to_core_spread(self, fig4_result):
        # Paper: up to ~30 mV on X-Gene 2.
        assert 15 <= fig4_result.core_to_core_spread_mv() <= 40

    def test_workload_spread(self, fig4_result):
        # Paper: up to ~40 mV in single-core runs.
        assert 25 <= fig4_result.workload_spread_mv() <= 50

    def test_crash_below_safe(self, fig4_result):
        for row in fig4_result.rows:
            assert row.crash_mv < row.safe_vmin_mv

    def test_single_core_variation_exceeds_multicore(self, fig4_result):
        # Fig. 4 vs Fig. 3: single-core spread >> the 10 mV multicore one.
        assert fig4_result.workload_spread_mv() > 10


@pytest.fixture(scope="module")
def fig5_result():
    return fig5.run("xgene3")


class TestFig5:
    def test_curves_for_all_configs(self, fig5_result):
        labels = {c.label for c in fig5_result.curves}
        assert labels == {
            "32T",
            "16T(spreaded)",
            "16T(clustered)",
            "8T(spreaded)",
            "8T(clustered)",
        }

    def test_max_threads_and_spreaded_half_identical(self, fig5_result):
        # Paper: the 32T and 16T(spreaded) lines are virtually the same.
        full = fig5_result.curve("32T")
        spread = fig5_result.curve("16T(spreaded)")
        for (v1, p1), (v2, p2) in zip(full.points, spread.points):
            assert v1 == v2
            assert p1 == pytest.approx(p2, abs=0.02)

    def test_clustered_shifts_left(self, fig5_result):
        # 16T(clustered) has lower safe Vmin than 32T.
        assert (
            fig5_result.curve("16T(clustered)").safe_vmin_mv()
            < fig5_result.curve("32T").safe_vmin_mv()
        )

    def test_pfail_monotone_in_voltage(self, fig5_result):
        for curve in fig5_result.curves:
            pfails = [p for _, p in sorted(curve.points)]
            assert pfails == sorted(pfails, reverse=True)

    def test_pfail_reaches_one(self, fig5_result):
        for curve in fig5_result.curves:
            assert max(p for _, p in curve.points) == pytest.approx(1.0)


@pytest.fixture(scope="module")
def fig6_result():
    return fig6.run("xgene3")


class TestFig6:
    def test_top_bin_pattern(self, fig6_result):
        # 32T and 16T(spreaded) populate [55,65); 16T(clustered) doesn't.
        top = (55, 65)
        full = fig6_result.rates("32T", top)
        spread = fig6_result.rates("16T(spreaded)", top)
        clustered = fig6_result.rates("16T(clustered)", top)
        assert min(full.values()) > 1.0
        assert min(spread.values()) > 1.0
        assert max(clustered.values()) < 0.1

    def test_second_bin_pattern(self, fig6_result):
        # 16T(clustered) and 8T(spreaded) populate [45,55); 8T(clustered)
        # doesn't.
        mid = (45, 55)
        assert min(fig6_result.rates("16T(clustered)", mid).values()) > 1.0
        assert min(fig6_result.rates("8T(spreaded)", mid).values()) > 1.0
        assert max(fig6_result.rates("8T(clustered)", mid).values()) < 0.1

    def test_all_programs_reported(self, fig6_result):
        rates = fig6_result.rates("32T", (55, 65))
        assert len(rates) == 25

    def test_same_allocation_same_ceiling_regardless_of_program(
        self, fig6_result
    ):
        # Section IV.A: all programs share the max droop magnitude for a
        # given allocation; only rates differ.
        top = (55, 65)
        clustered = fig6_result.rates("16T(clustered)", top)
        assert all(rate < 0.1 for rate in clustered.values())


class TestFig10:
    def test_factors_match_paper(self):
        result = fig10.run("xgene2")
        assert result.factors["workload"] == pytest.approx(0.01, abs=0.005)
        assert result.factors["core_allocation"] == pytest.approx(
            0.04, abs=0.015
        )
        assert result.factors["clock_skipping"] == pytest.approx(
            0.03, abs=0.015
        )
        assert result.factors["clock_division"] == pytest.approx(
            0.12, abs=0.02
        )

    def test_render_includes_paper_column(self):
        text = fig10.run("xgene2").format()
        assert "paper(%)" in text
