"""Shape tests for the evaluation experiments (Tables III/IV, Figs. 14/15).

These replay shortened (10-minute) workloads so the suite stays fast; the
full 1-hour numbers live in the benchmark harness and EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    fig14_power_timeline as fig14,
    fig15_load_timeline as fig15,
    table1,
    table2,
    tables34,
)

DURATION = 600.0


@pytest.fixture(scope="module")
def table3_result():
    return tables34.run("xgene2", duration_s=DURATION, seed=5)


@pytest.fixture(scope="module")
def table4_result():
    return tables34.run("xgene3", duration_s=DURATION, seed=5)


class TestTables34:
    def test_savings_ordering_xgene2(self, table3_result):
        rows = {r.config: r for r in table3_result.evaluation.rows()}
        assert (
            rows["optimal"].energy_savings_pct
            > rows["placement"].energy_savings_pct
            > 0
        )
        assert rows["safe_vmin"].energy_savings_pct > 0

    def test_savings_ordering_xgene3(self, table4_result):
        rows = {r.config: r for r in table4_result.evaluation.rows()}
        assert (
            rows["optimal"].energy_savings_pct
            > rows["placement"].energy_savings_pct
            > 0
        )

    def test_optimal_magnitude_xgene2(self, table3_result):
        # Paper: 25.2% on the 1-hour workload; short workloads wander a
        # few points.
        rows = {r.config: r for r in table3_result.evaluation.rows()}
        assert 15 <= rows["optimal"].energy_savings_pct <= 35

    def test_optimal_magnitude_xgene3(self, table4_result):
        # Paper: 22.3%.
        rows = {r.config: r for r in table4_result.evaluation.rows()}
        assert 12 <= rows["optimal"].energy_savings_pct <= 32

    def test_time_penalty_small(self, table3_result, table4_result):
        # Paper: 3.2%/2.5% on 1-hour runs. Short runs can be gated by a
        # single stretched memory-intensive job, so the bound is looser
        # here (the 1-hour bench lands at ~4%/2%).
        for result in (table3_result, table4_result):
            rows = {r.config: r for r in result.evaluation.rows()}
            assert 0 <= rows["optimal"].time_penalty_pct <= 16

    def test_no_violations(self, table3_result, table4_result):
        for result in (table3_result, table4_result):
            for row in result.evaluation.rows():
                assert row.violations == 0

    def test_ed2p_savings_positive_for_optimal(self, table3_result):
        rows = {r.config: r for r in table3_result.evaluation.rows()}
        assert rows["optimal"].ed2p_savings_pct > 0

    def test_render_mentions_paper(self, table3_result):
        text = table3_result.format()
        assert "Table III" in text
        assert "25.2%" in text  # the paper column

    def test_paper_reference_lookup(self, table4_result):
        ref = table4_result.paper_reference()
        assert ref["optimal"]["energy_savings_pct"] == 22.3


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14.run("xgene3", duration_s=DURATION, seed=5)

    def test_optimal_average_below_baseline(self, result):
        base, opt = result.average_power()
        assert opt < base

    def test_reduction_in_plausible_band(self, result):
        assert 5 <= result.reduction_pct() <= 40

    def test_traces_cover_run(self, result):
        assert len(result.baseline_trace.samples) >= DURATION
        assert len(result.optimal_trace.samples) >= DURATION

    def test_series_buckets(self, result):
        series = result.series(bucket_s=60)
        assert len(series) >= int(DURATION) // 60
        for _, base_w, opt_w in series:
            assert base_w >= 0 and opt_w >= 0


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self):
        return fig15.run("xgene3", duration_s=DURATION, seed=5)

    def test_load_has_phases(self, result):
        loads = result.load_moving_average()
        assert max(loads) > 2
        assert min(loads) < max(loads)

    def test_both_classes_observed(self, result):
        assert result.has_both_classes()

    def test_peak_within_capacity(self, result):
        assert 0 < result.peak_load() <= result.max_cores

    def test_series_rendering(self, result):
        text = result.format()
        assert "Figure 15" in text


class TestStaticTables:
    def test_table1_rows(self):
        result = table1.run()
        rendered = result.format()
        assert "8 cores" in rendered and "32 cores" in rendered
        assert "980 mV" in rendered and "870 mV" in rendered

    def test_table2_monotone(self):
        result = table2.run("xgene3")
        highs = [r.vmin_high_mv for r in result.rows]
        assert highs == sorted(highs)

    def test_table2_half_at_most_max(self):
        result = table2.run("xgene3")
        for row in result.rows:
            assert row.vmin_skip_mv <= row.vmin_high_mv

    def test_table2_near_paper(self):
        # Within ~40 mV of the published values (our table covers
        # single-thread worst-case variation; see EXPERIMENTS.md).
        result = table2.run("xgene3")
        for row in result.rows:
            assert row.paper_high_mv is not None
            assert abs(row.vmin_high_mv - row.paper_high_mv) <= 40
