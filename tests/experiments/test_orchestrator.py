"""Tests for the experiment registry and the parallel orchestrator."""

import importlib

import pytest

from repro.errors import ConfigurationError
from repro.experiments import orchestrator
from repro.experiments.registry import (
    REGISTRY,
    ExperimentEntry,
    experiment_names,
    get_entry,
    topological_order,
)
from repro.vmin.cache import reset_default_cache

#: Cheap experiments used for end-to-end orchestration tests.
FAST_SUBSET = ["table1", "fig5", "fig6"]


@pytest.fixture(autouse=True)
def fresh_default_cache():
    reset_default_cache()
    yield
    reset_default_cache()


class TestRegistry:
    def test_names_unique_and_nonempty(self):
        names = experiment_names()
        assert len(names) == len(set(names)) > 0

    def test_every_entry_resolves_to_a_render_callable(self):
        for entry in REGISTRY:
            module = importlib.import_module(entry.module_path)
            assert callable(getattr(module, entry.render_name))

    def test_every_entry_declares_an_artefact(self):
        for entry in REGISTRY:
            assert entry.artefact
            assert entry.cost > 0

    def test_depends_reference_known_names(self):
        names = set(experiment_names())
        for entry in REGISTRY:
            assert set(entry.depends) <= names

    def test_get_entry_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_entry("fig99")

    def test_report_depends_on_upstream_experiments(self):
        assert set(get_entry("report").depends) >= {"fig3", "table2"}


class TestTopologicalOrder:
    def test_full_registry_keeps_dependencies_before_dependents(self):
        order = [e.name for e in topological_order(experiment_names())]
        position = {name: i for i, name in enumerate(order)}
        for entry in REGISTRY:
            for dep in entry.depends:
                assert position[dep] < position[entry.name]

    def test_dependency_free_selection_keeps_registry_order(self):
        order = [e.name for e in topological_order(["fig5", "table1"])]
        assert order == ["table1", "fig5"]

    def test_deps_outside_selection_are_ignored(self):
        assert [e.name for e in topological_order(["report"])] == ["report"]

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            topological_order(["fig99"])

    def test_cycle_detected(self):
        cyclic = (
            ExperimentEntry(
                name="a", artefact="A", module="a", depends=("b",), cost=1.0
            ),
            ExperimentEntry(
                name="b", artefact="B", module="b", depends=("a",), cost=1.0
            ),
        )
        with pytest.raises(ConfigurationError):
            topological_order(["a", "b"], registry=cyclic)

    def test_alternative_registry_unknown_name(self):
        alt = (
            ExperimentEntry(name="a", artefact="A", module="a", cost=1.0),
        )
        with pytest.raises(ConfigurationError):
            topological_order(["b"], registry=alt)


class TestRenderExperiment:
    def test_matches_direct_module_call(self):
        module = importlib.import_module("repro.experiments.table1")
        assert orchestrator.render_experiment("table1") == module.render()

    def test_platform_override(self):
        xg2 = orchestrator.render_experiment("fig5", platform="xgene2")
        xg3 = orchestrator.render_experiment("fig5", platform="xgene3")
        assert xg2 != xg3

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            orchestrator.render_experiment("fig99")


class TestRunExperiments:
    def test_sequential_summary_shape(self):
        summary = orchestrator.run_experiments(names=FAST_SUBSET, jobs=1)
        assert summary.jobs == 1
        assert [o.name for o in summary.outcomes] == FAST_SUBSET
        for outcome in summary.outcomes:
            assert outcome.output
            assert outcome.elapsed_s >= 0.0
        assert summary.elapsed_s > 0.0

    def test_parallel_output_identical_to_sequential(self):
        sequential = orchestrator.run_experiments(names=FAST_SUBSET, jobs=1)
        parallel = orchestrator.run_experiments(names=FAST_SUBSET, jobs=2)
        assert parallel.merged_output() == sequential.merged_output()

    def test_merged_output_in_requested_order(self):
        summary = orchestrator.run_experiments(
            names=["fig6", "table1"], jobs=2
        )
        merged = summary.merged_output()
        assert merged.index("== fig6 ==") < merged.index("== table1 ==")

    def test_duplicate_names_collapsed(self):
        summary = orchestrator.run_experiments(
            names=["table1", "table1"], jobs=1
        )
        assert [o.name for o in summary.outcomes] == ["table1"]

    def test_unknown_name_rejected_before_any_work(self):
        with pytest.raises(ConfigurationError):
            orchestrator.run_experiments(names=["table1", "fig99"])

    def test_cache_accounting_reports_second_run_hits(self, tmp_path):
        cold = orchestrator.run_experiments(
            names=["fig3"], jobs=1, cache_dir=tmp_path
        )
        reset_default_cache()
        warm = orchestrator.run_experiments(
            names=["fig3"], jobs=1, cache_dir=tmp_path
        )
        assert warm.merged_output() == cold.merged_output()
        assert cold.outcome("fig3").cache.hits == 0
        warm_stats = warm.outcome("fig3").cache
        assert warm_stats.misses == 0
        assert warm_stats.hits > 0
        assert warm.outcome("fig3").cache_hit_rate == 1.0

    def test_summary_table_lists_each_experiment(self):
        summary = orchestrator.run_experiments(names=FAST_SUBSET, jobs=1)
        table = summary.format_table()
        for name in FAST_SUBSET:
            assert name in table
        assert "total" in table
        assert "speedup vs serial sum" in table

    def test_cache_totals_aggregate_outcomes(self):
        summary = orchestrator.run_experiments(
            names=["fig5", "fig6"], jobs=1
        )
        totals = summary.cache_totals
        assert totals.lookups == sum(
            o.cache.lookups for o in summary.outcomes
        )


class TestWorkerEntryPoint:
    def test_execute_populates_shared_disk_cache(self, tmp_path):
        outcome = orchestrator._execute(
            "fig3", None, 600.0, 0, str(tmp_path)
        )
        assert outcome.name == "fig3"
        assert outcome.output
        assert outcome.elapsed_s >= 0.0
        assert outcome.cache.misses > 0
        assert any(tmp_path.iterdir())
