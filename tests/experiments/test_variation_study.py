"""Tests for the chip-to-chip variation study (extension)."""

import pytest

from repro.experiments import variation_study


@pytest.fixture(scope="module")
def study():
    # Small population / short window keeps the test fast while still
    # including the sensitive paper die (seed 0) and a robust donor.
    return variation_study.run(
        "xgene2", seeds=(0, 3, 5), duration_s=1800.0, workload_seed=3
    )


class TestVariationStudy:
    def test_own_tables_always_safe(self, study):
        # The paper's per-chip characterization methodology never
        # undervolts its own silicon.
        assert study.own_table_always_safe()

    def test_full_chip_spread_much_smaller_than_single_core(self, study):
        # The attenuation argument generalizes across dies: multicore
        # Vmin is nearly chip-independent even when single-core Vmin
        # varies by tens of mV.
        assert study.full_chip_spread_mv() < 5
        assert study.single_core_spread_mv() > 8

    def test_golden_die_table_unsafe_somewhere(self, study):
        # Deploying the most robust die's table on the population
        # undervolts at least one sensitive die: why tables must be
        # per-chip.
        assert study.foreign_table_unsafe_chips() >= 1

    def test_golden_die_itself_safe_under_own_table(self, study):
        robust = min(
            study.records, key=lambda r: r.single_core_vmin_mv
        )
        assert robust.foreign_table_violations == 0

    def test_render(self, study):
        text = study.format()
        assert "Chip-to-chip" in text
        assert "foreign-table viol" in text
