"""Property-based tests of the policy stack's mandatory safe-Vmin clamp.

The structural claim of the arbitration layer: *no composition of
policies — however adversarial — can drive the rail below the measured
safe Vmin of the machine's current state*. Random stacks mixing real
governors with deliberately reckless members are replayed over random
workloads on both chips; the engine's voltage audit must stay silent
and the applied rail must end at or above the table level. A second
property pins determinism: identical stack composition and seed must
reproduce the run bit-for-bit, decision counters included.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import VminPolicyTable
from repro.platform.chip import Chip
from repro.platform.specs import xgene2_spec, xgene3_spec
from repro.policies.arbitration import PolicyStack
from repro.policies.governors import (
    BaselinePolicy,
    OndemandPolicy,
    PerformancePolicy,
    PowersavePolicy,
)
from repro.policies.safevmin import SafeVminPolicy
from repro.policies.surfaces import Action, Policy, PolicyEvent
from repro.sim.system import ServerSystem
from repro.workloads.generator import JobSpec, Workload
from repro.workloads.suites import get_benchmark

SPECS = {"xgene2": xgene2_spec(), "xgene3": xgene3_spec()}
TABLES = {
    key: VminPolicyTable.from_characterization(spec)
    for key, spec in SPECS.items()
}
#: Small benchmark pool mixing both classes and both program shapes.
_POOL = ("namd", "EP", "CG", "mcf")


class _Undervolter(Policy):
    """Adversary: settles the rail far below any safe level, always."""

    def __init__(self, settle_mv: int):
        self.settle_mv = settle_mv

    def decide(self, obs):
        if obs.event is PolicyEvent.ADMIT:
            return None
        return Action(voltage_mv=self.settle_mv)


class _WeakRaiser(Policy):
    """Adversary: answers every admission with a uselessly low raise."""

    def decide(self, obs):
        if obs.event is PolicyEvent.ADMIT:
            return Action(raise_voltage_mv=705)
        return None


class _HotClocker(Policy):
    """Adversary: pins every clock at fmax while undervolting."""

    def __init__(self, spec):
        self.spec = spec

    def decide(self, obs):
        if obs.event is PolicyEvent.ADMIT:
            return None
        return Action(
            pmd_freqs_hz={
                pmd: self.spec.fmax_hz for pmd in range(self.spec.n_pmds)
            },
            voltage_mv=660,
        )


#: Member factories: (label, chip key -> fresh policy). Fresh instances
#: per run keep stateful members from leaking across replays.
MEMBER_FACTORIES = (
    ("noop", lambda key: Policy()),
    ("baseline", lambda key: BaselinePolicy()),
    ("ondemand-chip", lambda key: OndemandPolicy(scope="chip")),
    ("ondemand-pmd", lambda key: OndemandPolicy(scope="pmd")),
    ("performance", lambda key: PerformancePolicy()),
    ("powersave", lambda key: PowersavePolicy()),
    (
        "safe-vmin",
        lambda key: SafeVminPolicy(SPECS[key], policy=TABLES[key]),
    ),
    ("undervolt-650", lambda key: _Undervolter(650)),
    ("undervolt-720", lambda key: _Undervolter(720)),
    ("weak-raiser", lambda key: _WeakRaiser()),
    ("hot-clocker", lambda key: _HotClocker(SPECS[key])),
)
_FACTORY_BY_LABEL = dict(MEMBER_FACTORIES)


@st.composite
def stack_runs(draw):
    """(chip key, member labels, workload) for one stacked replay."""
    chip_key = draw(st.sampled_from(tuple(SPECS)))
    labels = draw(
        st.lists(
            st.sampled_from([label for label, _ in MEMBER_FACTORIES]),
            min_size=1,
            max_size=4,
        )
    )
    spec = SPECS[chip_key]
    jobs = []
    count = draw(st.integers(1, 4))
    for job_id in range(count):
        name = draw(st.sampled_from(_POOL))
        parallel = get_benchmark(name).parallel
        nthreads = draw(st.sampled_from((2, 4))) if parallel else 1
        start = draw(st.floats(0.0, 60.0).map(lambda v: round(v, 2)))
        jobs.append(JobSpec(job_id, name, nthreads, start))
    workload = Workload(
        jobs=tuple(jobs),
        duration_s=200.0,
        max_cores=spec.n_cores,
        seed=0,
    )
    return chip_key, labels, workload


def build_stack(chip_key, labels):
    """A fresh stack of the drawn members over the shared table."""
    return PolicyStack(
        SPECS[chip_key],
        [_FACTORY_BY_LABEL[label](chip_key) for label in labels],
        table=TABLES[chip_key],
    )


def replay(chip_key, labels, workload):
    stack = build_stack(chip_key, labels)
    system = ServerSystem(
        Chip(SPECS[chip_key]), workload, policy=stack
    )
    return system.run(), system, stack


class TestClampSafety:
    @given(stack_runs())
    @settings(max_examples=30, deadline=None)
    def test_rail_never_below_safe_vmin(self, drawn):
        chip_key, labels, workload = drawn
        result, system, stack = replay(chip_key, labels, workload)
        # The engine's own audit: the applied voltage never sat below
        # the machine's safe Vmin while anything was running.
        assert result.violations == []
        # And the final state is explicitly at or above the table level.
        state = system.chip.state()
        required = TABLES[chip_key].safe_voltage_mv(
            max(1, len(state.active_pmds)), state.max_active_frequency()
        )
        assert system.chip.voltage_mv >= required
        assert all(p.finish_s is not None for p in result.processes)
        assert stack.decisions > 0

    @given(stack_runs())
    @settings(max_examples=10, deadline=None)
    def test_undervolter_alone_is_contained(self, drawn):
        chip_key, _, workload = drawn
        # The worst member on its own: the clamp is the only defence.
        result, _, stack = replay(chip_key, ["undervolt-650"], workload)
        assert result.violations == []
        assert stack.clamps > 0


class TestDeterminism:
    @given(stack_runs())
    @settings(max_examples=15, deadline=None)
    def test_identical_seed_identical_run(self, drawn):
        chip_key, labels, workload = drawn
        first, _, stack_a = replay(chip_key, labels, workload)
        second, _, stack_b = replay(chip_key, labels, workload)
        assert first.makespan_s == second.makespan_s
        assert first.energy_j == second.energy_j
        assert first.voltage_transitions == second.voltage_transitions
        assert first.frequency_transitions == second.frequency_transitions
        assert [p.finish_s for p in first.processes] == [
            p.finish_s for p in second.processes
        ]
        assert stack_a.decision_counters() == stack_b.decision_counters()
