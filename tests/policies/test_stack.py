"""Deterministic tests of stack arbitration and the registry."""

import pytest

from repro.core.policy import VminPolicyTable
from repro.errors import ConfigurationError
from repro.platform.chip import Chip
from repro.platform.specs import xgene2_spec
from repro.policies.arbitration import PolicyStack
from repro.policies.daemon import OnlineMonitoringDaemon
from repro.policies.ed2p import Ed2pPolicy
from repro.policies.governors import BaselinePolicy, PowersavePolicy
from repro.policies.registry import (
    describe_policy,
    get_policy_descriptor,
    policy_keys,
    rail_mode,
    resolve_policy,
)
from repro.policies.surfaces import Action, Observation, Policy, PolicyEvent
from repro.telemetry import names as metric_names

SPEC2 = xgene2_spec()
TABLE2 = VminPolicyTable.from_characterization(SPEC2)


class _Fixed(Policy):
    """Returns one canned action for every event."""

    def __init__(self, action):
        self.action = action

    def decide(self, obs):
        return self.action


class _FakeProcess:
    def __init__(self, pid, cores):
        self.pid = pid
        self.cores = tuple(cores)
        self.nthreads = len(self.cores)


class _BareSystem:
    def __init__(self, chip, processes=()):
        self.chip = chip
        self.spec = chip.spec
        self.now = 0.0
        self._processes = list(processes)

    def running_processes(self):
        return list(self._processes)


def observe(chip, event=PolicyEvent.STARTED, processes=()):
    return Observation(_BareSystem(chip, processes), event)


class TestArbitration:
    def make_stack(self, *policies):
        return PolicyStack(SPEC2, policies, table=TABLE2)

    def test_needs_at_least_one_member(self):
        with pytest.raises(ConfigurationError):
            PolicyStack(SPEC2, [], table=TABLE2)

    def test_raise_merges_as_maximum(self):
        stack = self.make_stack(
            _Fixed(Action(raise_voltage_mv=920)),
            _Fixed(Action(raise_voltage_mv=960)),
        )
        action = stack.decide(observe(Chip(SPEC2)))
        assert action.raise_voltage_mv == 960
        assert stack.overrides == 0

    def test_settle_voltage_first_wins_and_counts_override(self):
        nominal = SPEC2.nominal_voltage_mv
        stack = self.make_stack(
            _Fixed(Action(voltage_mv=nominal)),
            _Fixed(Action(voltage_mv=nominal - 10)),
        )
        action = stack.decide(observe(Chip(SPEC2)))
        assert action.voltage_mv == nominal
        assert stack.overrides == 1

    def test_freqs_merge_per_pmd_first_writer(self):
        stack = self.make_stack(
            _Fixed(Action(pmd_freqs_hz={0: SPEC2.fmax_hz})),
            _Fixed(
                Action(
                    pmd_freqs_hz={
                        0: SPEC2.fmin_hz,  # loses PMD 0
                        1: SPEC2.fmin_hz,  # wins PMD 1 uncontested
                    }
                )
            ),
        )
        action = stack.decide(observe(Chip(SPEC2)))
        assert action.pmd_freqs_hz[0] == SPEC2.fmax_hz
        assert action.pmd_freqs_hz[1] == SPEC2.fmin_hz
        assert stack.overrides == 1

    def test_power_cap_merges_as_minimum(self):
        stack = self.make_stack(
            _Fixed(Action(power_cap_w=30.0)),
            _Fixed(Action(power_cap_w=22.0)),
        )
        action = stack.decide(observe(Chip(SPEC2)))
        assert action.power_cap_w == 22.0

    def test_clamp_lifts_undervolting_member(self):
        stack = self.make_stack(_Fixed(Action(voltage_mv=650)))
        action = stack.decide(observe(Chip(SPEC2)))
        # With nothing running the floor is one PMD at fmin — still a
        # hard floor no member may dive under.
        required = TABLE2.safe_voltage_mv(1, SPEC2.fmin_hz)
        assert action.voltage_mv == required
        assert action.raise_voltage_mv == required
        assert stack.clamps == 1

    def test_clamp_tracks_requested_clocks(self):
        # Undervolt while pinning the busy PMD at fmax: the clamp must
        # price the *requested* clock, not the current (fmin) one.
        stack = self.make_stack(
            _Fixed(Action(voltage_mv=650, pmd_freqs_hz={0: SPEC2.fmax_hz}))
        )
        action = stack.decide(
            observe(Chip(SPEC2), processes=[_FakeProcess(1, (0,))])
        )
        assert action.voltage_mv == TABLE2.safe_voltage_mv(
            1, SPEC2.fmax_hz
        )
        assert stack.clamps == 1

    def test_noop_merge_returns_none(self):
        stack = self.make_stack(Policy(), Policy())
        assert stack.decide(observe(Chip(SPEC2))) is None
        assert stack.decisions == 1

    def test_counters_use_registry_metric_names(self):
        stack = self.make_stack(Policy())
        counters = stack.decision_counters()
        assert set(counters) == {
            metric_names.POLICY_DECISIONS,
            metric_names.POLICY_CLAMPS,
            metric_names.POLICY_OVERRIDES,
        }

    def test_tick_cadence_is_fastest_member(self):
        fast = OnlineMonitoringDaemon(
            SPEC2, policy=TABLE2, monitor_period_s=0.2
        )
        slow = OnlineMonitoringDaemon(
            SPEC2, policy=TABLE2, monitor_period_s=0.8
        )
        stack = self.make_stack(slow, fast)
        assert stack.monitor_period_s == 0.2
        assert self.make_stack(BaselinePolicy()).monitor_period_s is None


class TestRegistry:
    def test_all_keys_resolve(self):
        for key in policy_keys():
            policy = resolve_policy(key, SPEC2, table=TABLE2)
            assert policy.key == key

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            get_policy_descriptor("overclock-everything")

    def test_rail_modes(self):
        assert rail_mode("baseline-ondemand") == "nominal"
        assert rail_mode("safe-vmin") == "safe"
        with pytest.raises(ConfigurationError):
            rail_mode("none")

    def test_paper_bundles_have_paper_semantics(self):
        optimal = resolve_policy("daemon", SPEC2, table=TABLE2)
        placement = resolve_policy(
            "daemon-placement", SPEC2, table=TABLE2
        )
        assert optimal.control_voltage is True
        assert placement.control_voltage is False

    def test_ed2p_derives_the_daemon_clocks_on_paper_chips(self):
        # The Fig. 12 reproduction claim: the derived per-class argmin
        # clocks coincide with the daemon's hard-coded operating points.
        policy = resolve_policy("ed2p", SPEC2, table=TABLE2)
        assert isinstance(policy, Ed2pPolicy)
        assert policy.clock_plan.cpu_freq_hz == SPEC2.fmax_hz
        assert policy.engine.cpu_freq_hz == SPEC2.fmax_hz
        baseline_daemon = OnlineMonitoringDaemon(SPEC2, policy=TABLE2)
        assert policy.engine.mem_freq_hz == baseline_daemon.engine.mem_freq_hz

    def test_describe_rows(self):
        rows = dict(describe_policy("ed2p", SPEC2))
        assert rows["class"] == "Ed2pPolicy"
        assert rows["rail mode"] == "safe"
        assert "cpu clock" in rows

    def test_powersave_resolves_to_pinned_governor(self):
        policy = resolve_policy("powersave", SPEC2)
        assert isinstance(policy, PowersavePolicy)
