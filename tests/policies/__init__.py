"""Tests of the composable policy control plane."""
