"""Tests for the execution-time model (paper Section IV.B)."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.model import (
    bandwidth_demand_gbs,
    execution_state,
    job_duration_s,
    multi_instance_performance_ratio,
    solo_slowdown,
    thread_work,
)
from repro.units import ghz
from repro.workloads.profiles import REFERENCE_FREQ_HZ
from repro.workloads.suites import get_benchmark


class TestFrequencyScaling:
    def test_cpu_intensive_scales_with_frequency(self, spec3, namd):
        fast = job_duration_s(namd, spec3, ghz(3.0))
        slow = job_duration_s(namd, spec3, ghz(1.5))
        assert slow / fast == pytest.approx(2.0, rel=0.05)

    def test_memory_intensive_barely_scales(self, spec3, cg):
        fast = job_duration_s(cg, spec3, ghz(3.0))
        slow = job_duration_s(cg, spec3, ghz(1.5))
        assert slow / fast < 1.35

    def test_reference_point_duration(self, spec3, namd):
        # At the reference clock on the reference chip, the solo
        # duration is the profile's reference time.
        assert job_duration_s(namd, spec3, REFERENCE_FREQ_HZ) == (
            pytest.approx(namd.ref_time_s, rel=0.01)
        )

    def test_xgene2_memory_path_slower(self, spec2, spec3, cg):
        t2 = job_duration_s(cg, spec2, ghz(2.4))
        t3 = job_duration_s(cg, spec3, ghz(2.25))
        # Lower clock AND slower memory on X-Gene 2.
        assert t2 > t3

    def test_zero_frequency_rejected(self, spec3, namd):
        with pytest.raises(ConfigurationError):
            solo_slowdown(namd, spec3, 0)


class TestThreadSemantics:
    """Section II.B: parallel work-split vs replicated instances."""

    def test_parallel_split_speeds_up(self, spec3, cg):
        solo = job_duration_s(cg, spec3, ghz(3.0), nthreads=1)
        split = job_duration_s(cg, spec3, ghz(3.0), nthreads=8)
        assert split < solo / 4

    def test_replicated_does_not_split(self, spec3, namd):
        solo = thread_work(namd, spec3, 1)
        multi = thread_work(namd, spec3, 8)
        assert multi.cpu_cycles == solo.cpu_cycles

    def test_parallel_efficiency_below_ideal(self, spec3, cg):
        solo = thread_work(cg, spec3, 1)
        split = thread_work(cg, spec3, 8)
        assert split.cpu_cycles > solo.cpu_cycles / 8

    def test_l3_accesses_split_with_work(self, spec3, cg):
        solo = thread_work(cg, spec3, 1)
        split = thread_work(cg, spec3, 4)
        assert split.l3_accesses < solo.l3_accesses

    def test_bad_thread_count(self, spec3, cg):
        with pytest.raises(ConfigurationError):
            thread_work(cg, spec3, 0)


class TestContentionAndSharing:
    def test_contention_inflates_memory_part(self, spec3, cg):
        base = job_duration_s(cg, spec3, ghz(3.0))
        crowded = job_duration_s(cg, spec3, ghz(3.0), contention=2.0)
        assert crowded > base * 1.5

    def test_contention_ignores_cpu_bound(self, spec3, namd):
        base = job_duration_s(namd, spec3, ghz(3.0))
        crowded = job_duration_s(namd, spec3, ghz(3.0), contention=3.0)
        assert crowded < base * 1.1

    def test_l2_sharing_slows_memory_bound(self, spec3, cg):
        alone = job_duration_s(cg, spec3, ghz(3.0), shares_pmd=False)
        shared = job_duration_s(cg, spec3, ghz(3.0), shares_pmd=True)
        assert shared > alone * 1.2

    def test_l2_sharing_spares_cpu_bound(self, spec3, namd):
        alone = job_duration_s(namd, spec3, ghz(3.0), shares_pmd=False)
        shared = job_duration_s(namd, spec3, ghz(3.0), shares_pmd=True)
        assert shared < alone * 1.05

    def test_invalid_contention_rejected(self, spec3, cg):
        with pytest.raises(ConfigurationError):
            execution_state(cg, spec3, ghz(3.0), contention=0.5)


class TestExecutionState:
    def test_shares_sum_to_one(self, spec3, cg):
        state = execution_state(cg, spec3, ghz(3.0))
        assert state.cpu_share + state.mem_share == pytest.approx(1.0)

    def test_memory_bound_mostly_stalled(self, spec3, cg):
        state = execution_state(cg, spec3, ghz(3.0))
        assert state.mem_share > 0.6

    def test_cpu_share_rises_at_low_frequency(self, spec3, cg):
        hi = execution_state(cg, spec3, ghz(3.0))
        lo = execution_state(cg, spec3, ghz(0.75))
        assert lo.cpu_share > hi.cpu_share

    def test_effective_activity_below_profile_activity(self, spec3, cg):
        # Stalled cycles toggle less logic.
        state = execution_state(cg, spec3, ghz(3.0))
        assert state.effective_activity < cg.activity

    def test_l3_rate_near_profile_at_reference(self, spec3, cg):
        state = execution_state(cg, spec3, REFERENCE_FREQ_HZ)
        assert state.l3_rate_per_mcycles == pytest.approx(
            cg.l3_rate_per_mcycles, rel=0.02
        )

    def test_l3_rate_drops_under_contention(self, spec3, cg):
        # More stall cycles per access -> lower rate per cycle.
        base = execution_state(cg, spec3, ghz(3.0))
        crowded = execution_state(cg, spec3, ghz(3.0), contention=3.0)
        assert crowded.l3_rate_per_mcycles < base.l3_rate_per_mcycles


class TestBandwidthDemand:
    def test_demand_at_reference(self, spec3, cg):
        assert bandwidth_demand_gbs(cg, spec3, REFERENCE_FREQ_HZ) == (
            pytest.approx(cg.bandwidth_gbs, rel=0.01)
        )

    def test_demand_thins_at_low_frequency(self, spec3, cg):
        fast = bandwidth_demand_gbs(cg, spec3, ghz(3.0))
        slow = bandwidth_demand_gbs(cg, spec3, ghz(1.5))
        assert slow < fast


class TestFig8Ratio:
    def test_memory_bound_collapses(self, spec3, cg):
        assert multi_instance_performance_ratio(cg, spec3) < 0.5

    def test_cpu_bound_untouched(self, spec3, namd):
        assert multi_instance_performance_ratio(namd, spec3) > 0.95

    def test_ratio_never_above_one(self, spec3):
        for name in ("namd", "EP", "CG", "mcf", "gcc", "astar"):
            profile = get_benchmark(name)
            assert multi_instance_performance_ratio(profile, spec3) <= 1.0

    def test_ordering_matches_paper(self, spec3):
        # Fig. 8: CG and FT are the most contention-bound; namd and EP
        # the least.
        ratios = {
            name: multi_instance_performance_ratio(
                get_benchmark(name), spec3
            )
            for name in ("namd", "EP", "CG", "FT", "hmmer")
        }
        assert ratios["CG"] < ratios["FT"] < ratios["hmmer"]
        assert ratios["CG"] < ratios["namd"]
        assert ratios["CG"] < ratios["EP"]
