"""Tests for the shared-resource contention primitives."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.contention import (
    bandwidth_capacity_gbs,
    bandwidth_utilization,
    contention_factor,
    l2_sharing_factor,
)


class TestContentionFactor:
    def test_no_contention_within_capacity(self, spec3):
        capacity = bandwidth_capacity_gbs(spec3)
        assert contention_factor(spec3, [capacity / 4] * 2) == 1.0

    def test_oversubscription_ratio(self, spec3):
        capacity = bandwidth_capacity_gbs(spec3)
        factor = contention_factor(spec3, [capacity] * 3)
        assert factor == pytest.approx(3.0)

    def test_empty_demands(self, spec3):
        assert contention_factor(spec3, []) == 1.0

    def test_negative_demand_rejected(self, spec3):
        with pytest.raises(ConfigurationError):
            contention_factor(spec3, [-1.0])

    def test_xgene2_saturates_earlier(self, spec2, spec3):
        assert bandwidth_capacity_gbs(spec2) < bandwidth_capacity_gbs(
            spec3
        )


class TestBandwidthUtilization:
    def test_clipped_at_one(self, spec3):
        capacity = bandwidth_capacity_gbs(spec3)
        assert bandwidth_utilization(spec3, [capacity * 2]) == 1.0

    def test_fractional(self, spec3):
        capacity = bandwidth_capacity_gbs(spec3)
        assert bandwidth_utilization(
            spec3, [capacity / 2]
        ) == pytest.approx(0.5)

    def test_zero_without_demand(self, spec3):
        assert bandwidth_utilization(spec3, []) == 0.0


class TestL2Sharing:
    def test_no_penalty_when_alone(self):
        assert l2_sharing_factor(0.9, shares_pmd=False) == 1.0

    def test_penalty_scales_with_sensitivity(self):
        low = l2_sharing_factor(0.1, shares_pmd=True)
        high = l2_sharing_factor(0.9, shares_pmd=True)
        assert 1.0 < low < high

    def test_sensitivity_bounds(self):
        with pytest.raises(ConfigurationError):
            l2_sharing_factor(1.5, shares_pmd=True)
        with pytest.raises(ConfigurationError):
            l2_sharing_factor(-0.1, shares_pmd=False)
