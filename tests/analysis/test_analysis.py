"""Tests for analysis helpers (statistics and table rendering)."""

import pytest

from repro.analysis.stats import (
    compare_to_paper,
    geometric_mean,
    mean,
    relative_error,
    span,
    within,
)
from repro.analysis.tables import format_series, format_table
from repro.errors import ConfigurationError


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_empty(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_span(self):
        assert span([3.0, -1.0, 2.0]) == 4.0

    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)

    def test_relative_error_zero_reference(self):
        with pytest.raises(ConfigurationError):
            relative_error(1.0, 0.0)

    def test_within(self):
        assert within(105.0, 100.0, 0.06)
        assert not within(110.0, 100.0, 0.05)

    def test_compare_to_paper(self):
        rows = compare_to_paper(
            {"energy": 95.0}, {"energy": 100.0}
        )
        assert rows[0]["rel_err"] == pytest.approx(0.05)

    def test_compare_missing_measurement(self):
        with pytest.raises(ConfigurationError):
            compare_to_paper({}, {"energy": 100.0})


class TestTables:
    def test_basic_table(self):
        text = format_table(
            ("a", "b"), [(1, "x"), (22, "yy")], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert lines[2].startswith("-")
        assert len(lines) == 5

    def test_alignment(self):
        text = format_table(("col",), [("short",), ("much longer",)])
        lines = text.splitlines()
        assert len(lines[1]) == len("much longer")

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(("a", "b"), [(1,)])

    def test_float_formatting(self):
        text = format_table(("v",), [(1234567.0,), (0.25,), (0.0,)])
        assert "1.235e+06" in text
        assert "0.25" in text

    def test_series(self):
        text = format_series("S", [(1, 2.0)], "x", "y")
        assert text.splitlines()[0] == "S"
        assert "x" in text and "y" in text


class TestCsvExport:
    def test_write_csv_roundtrip(self, tmp_path):
        import csv

        from repro.analysis.export import write_csv

        path = write_csv(
            tmp_path / "out.csv", ("a", "b"), [(1, "x"), (2, "y")]
        )
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "x"], ["2", "y"]]

    def test_write_csv_creates_directories(self, tmp_path):
        from repro.analysis.export import write_csv

        path = write_csv(tmp_path / "deep" / "dir" / "out.csv", ("a",), [(1,)])
        assert path.exists()

    def test_write_csv_validates_width(self, tmp_path):
        from repro.analysis.export import write_csv

        with pytest.raises(ConfigurationError):
            write_csv(tmp_path / "bad.csv", ("a", "b"), [(1,)])

    def test_trace_to_csv(self, tmp_path):
        import csv

        from repro.analysis.export import trace_to_csv
        from repro.sim.tracing import TimelineTrace, TraceSample

        trace = TimelineTrace()
        trace.append(
            TraceSample(
                time_s=0.0,
                power_w=10.0,
                busy_cores=4,
                running_processes=2,
                cpu_intensive=1,
                memory_intensive=1,
                voltage_mv=870,
                mean_active_freq_hz=3e9,
            )
        )
        path = trace_to_csv(tmp_path / "trace.csv", trace)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "time_s"
        assert rows[1][1] == "10.0"

    def test_series_to_csv(self, tmp_path):
        from repro.analysis.export import series_to_csv

        path = series_to_csv(
            tmp_path / "s.csv", [(1, 2)], "volt", "pfail"
        )
        assert "volt" in path.read_text()
