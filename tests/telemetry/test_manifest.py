"""Tests for run manifests: schema, fingerprints, diff, instrumentation."""

from __future__ import annotations

import copy
import json

import pytest

from repro import telemetry
from repro.experiments import orchestrator
from repro.telemetry import names as metric_names
from repro.telemetry.manifest import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA_VERSION,
    canonical_json,
    diff_manifests,
    hit_rate_of,
    iter_experiment_names,
    load_manifest,
    manifest_fingerprint,
    strip_timing_fields,
    summarize_manifest,
    validate_manifest,
    write_manifest,
)

SUBSET = ["table1", "fig5"]
RUN_KWARGS = dict(platform="xgene2", duration_s=60.0, seed=0)


@pytest.fixture(scope="module")
def summary():
    return orchestrator.run_experiments(
        names=SUBSET, jobs=1, collect_telemetry=True, **RUN_KWARGS
    )


@pytest.fixture(scope="module")
def manifest(summary):
    return telemetry.build_manifest(summary, **RUN_KWARGS)


class TestBuildAndSchema:
    def test_built_manifest_validates(self, manifest):
        assert validate_manifest(manifest) == []
        assert manifest["kind"] == MANIFEST_KIND
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION

    def test_manifest_covers_requested_experiments(self, manifest):
        assert list(iter_experiment_names(manifest)) == SUBSET
        assert manifest["totals"]["experiments"] == len(SUBSET)

    def test_every_experiment_carries_metrics_and_digest(self, manifest):
        for entry in manifest["experiments"]:
            assert entry["metrics"] is not None
            assert len(entry["output_sha256"]) == 64
            assert entry["output_bytes"] > 0

    def test_run_level_metrics_are_merged_in(self, summary, manifest):
        completed = metric_names.ORCH_EXPERIMENTS_COMPLETED
        assert summary.metrics["counters"][completed] == len(SUBSET)
        assert manifest["metrics"]["counters"][completed] == len(SUBSET)

    def test_missing_key_is_a_schema_error(self, manifest):
        broken = copy.deepcopy(manifest)
        del broken["totals"]["cache"]
        errors = validate_manifest(broken)
        assert any("totals.cache" in e for e in errors)

    def test_extra_key_is_a_schema_error(self, manifest):
        broken = copy.deepcopy(manifest)
        broken["unexpected"] = 1
        errors = validate_manifest(broken)
        assert any("unexpected" in e for e in errors)

    def test_wrong_type_is_a_schema_error(self, manifest):
        broken = copy.deepcopy(manifest)
        broken["config"]["seed"] = "zero"
        errors = validate_manifest(broken)
        assert any("config.seed" in e for e in errors)

    def test_bool_does_not_satisfy_int(self, manifest):
        broken = copy.deepcopy(manifest)
        broken["config"]["seed"] = True
        errors = validate_manifest(broken)
        assert any("config.seed" in e for e in errors)

    def test_unknown_schema_version_is_rejected(self, manifest):
        broken = copy.deepcopy(manifest)
        broken["schema_version"] = 99
        errors = validate_manifest(broken)
        assert errors and "unknown version 99" in errors[0]

    def test_non_object_payloads_are_rejected(self):
        assert validate_manifest([]) != []
        assert validate_manifest({"schema_version": "x"}) != []


class TestFingerprint:
    def test_fingerprint_ignores_timing_and_environment(self, manifest):
        other = copy.deepcopy(manifest)
        other["totals"]["elapsed_s"] = 999.0
        other["experiments"][0]["elapsed_s"] = 123.0
        other["environment"]["git_rev"] = "somewhere-else"
        assert manifest_fingerprint(other) == manifest["fingerprint"]

    def test_fingerprint_sees_deterministic_changes(self, manifest):
        other = copy.deepcopy(manifest)
        other["experiments"][0]["output_sha256"] = "0" * 64
        assert manifest_fingerprint(other) != manifest["fingerprint"]

    def test_strip_timing_drops_span_subtrees(self, manifest):
        stripped = strip_timing_fields(manifest)
        assert "spans" not in stripped["metrics"]
        assert "elapsed_s" not in stripped["totals"]
        for entry in stripped["experiments"]:
            assert "elapsed_s" not in entry


class TestDiffAndSummary:
    def test_identical_manifests_diff_empty(self, manifest):
        assert diff_manifests(manifest, manifest) == []

    def test_timing_only_changes_diff_empty_by_default(self, manifest):
        other = copy.deepcopy(manifest)
        other["totals"]["elapsed_s"] = 999.0
        assert diff_manifests(manifest, other) == []
        assert diff_manifests(
            manifest, other, ignore_timing=False
        ) != []

    def test_value_change_is_reported_with_path(self, manifest):
        other = copy.deepcopy(manifest)
        other["config"]["seed"] = 7
        lines = diff_manifests(manifest, other)
        assert any("config.seed" in line and "-> 7" in line for line in lines)

    def test_summary_mentions_experiments_and_fingerprint(self, manifest):
        text = summarize_manifest(manifest)
        assert manifest["fingerprint"][:16] in text
        for name in SUBSET:
            assert name in text

    def test_hit_rate_reads_totals(self, manifest):
        assert hit_rate_of(manifest) == pytest.approx(
            manifest["totals"]["cache"]["hit_rate"]
        )


class TestRoundTrip:
    def test_write_then_load_preserves_payload(self, manifest, tmp_path):
        path = tmp_path / "manifest.json"
        write_manifest(manifest, str(path))
        assert load_manifest(str(path)) == manifest
        # Stable on-disk form: sorted keys, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(manifest, indent=2, sort_keys=True) + "\n"

    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )
