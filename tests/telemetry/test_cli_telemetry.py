"""Tests for `--summary-json` and the `repro telemetry` subcommands."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.experiments import orchestrator
from repro.vmin.cache import reset_default_cache

RUN_KWARGS = dict(platform="xgene2", duration_s=60.0, seed=0)


@pytest.fixture(autouse=True)
def fresh_default_cache():
    reset_default_cache()
    yield
    reset_default_cache()


def _shrink_registry(monkeypatch, names=("table1", "fig5")):
    from repro.experiments import registry

    subset = tuple(e for e in registry.REGISTRY if e.name in names)
    monkeypatch.setattr(registry, "REGISTRY", subset)
    monkeypatch.setattr(orchestrator, "REGISTRY", subset)
    monkeypatch.setattr(
        "repro.cli.experiment_names",
        lambda: tuple(e.name for e in subset),
    )
    return [e.name for e in subset]


def _write_manifest(tmp_path, name="manifest.json", names=("table1", "fig5")):
    summary = orchestrator.run_experiments(
        names=list(names), jobs=1, collect_telemetry=True, **RUN_KWARGS
    )
    manifest = telemetry.build_manifest(summary, **RUN_KWARGS)
    path = tmp_path / name
    telemetry.write_manifest(manifest, str(path))
    return path, manifest


class TestSummaryJsonFlag:
    def test_run_all_writes_valid_manifest(
        self, monkeypatch, tmp_path, capsys
    ):
        names = _shrink_registry(monkeypatch)
        out = tmp_path / "manifest.json"
        assert main(["run-all", "--summary-json", str(out)]) == 0
        captured = capsys.readouterr()
        assert "== table1 ==" in captured.out
        assert f"run manifest written to {out}" in captured.err
        manifest = json.loads(out.read_text())
        assert telemetry.validate_manifest(manifest) == []
        assert [e["name"] for e in manifest["experiments"]] == names

    def test_run_all_without_flag_skips_collection(
        self, monkeypatch, capsys
    ):
        _shrink_registry(monkeypatch)
        assert main(["run-all"]) == 0
        assert "run manifest written" not in capsys.readouterr().err
        assert not telemetry.enabled()

    def test_telemetry_left_disabled_after_manifest_run(
        self, monkeypatch, tmp_path, capsys
    ):
        _shrink_registry(monkeypatch)
        out = tmp_path / "manifest.json"
        assert main(["run-all", "--summary-json", str(out)]) == 0
        capsys.readouterr()
        assert not telemetry.enabled()


class TestTelemetrySubcommands:
    def test_check_accepts_valid_manifest(self, tmp_path, capsys):
        path, _ = _write_manifest(tmp_path)
        assert main(["telemetry", "check", str(path)]) == 0
        assert "manifest OK" in capsys.readouterr().err

    def test_check_rejects_schema_violations(self, tmp_path, capsys):
        path, manifest = _write_manifest(tmp_path)
        manifest.pop("totals")
        path.write_text(json.dumps(manifest))
        assert main(["telemetry", "check", str(path)]) == 1
        assert "schema" in capsys.readouterr().err

    def test_check_enforces_min_hit_rate(self, tmp_path, capsys):
        path, manifest = _write_manifest(tmp_path)
        # A cache-less run has hit rate 0.0: the floor must trip.
        assert (
            main(["telemetry", "check", str(path), "--min-hit-rate", "0.5"])
            == 1
        )
        assert "hit rate" in capsys.readouterr().err
        assert (
            main(["telemetry", "check", str(path), "--min-hit-rate", "0.0"])
            == 0
        )

    def test_check_enforces_experiment_count(self, tmp_path, capsys):
        path, _ = _write_manifest(tmp_path)
        assert (
            main(
                [
                    "telemetry", "check", str(path),
                    "--expect-experiments", "3",
                ]
            )
            == 1
        )
        assert "expected 3" in capsys.readouterr().err

    def test_summarize_prints_experiments(self, tmp_path, capsys):
        path, manifest = _write_manifest(tmp_path)
        assert main(["telemetry", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig5" in out
        assert manifest["fingerprint"][:16] in out

    def test_dump_emits_canonical_json(self, tmp_path, capsys):
        path, manifest = _write_manifest(tmp_path)
        assert main(["telemetry", "dump", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == manifest

    def test_dump_strip_timing(self, tmp_path, capsys):
        path, _ = _write_manifest(tmp_path)
        assert main(["telemetry", "dump", str(path), "--strip-timing"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "elapsed_s" not in payload["totals"]

    def test_diff_identical_manifests_exits_zero(self, tmp_path, capsys):
        path, _ = _write_manifest(tmp_path)
        assert main(["telemetry", "diff", str(path), str(path)]) == 0
        assert "manifests identical" in capsys.readouterr().err

    def test_diff_reports_changes_and_exits_nonzero(
        self, tmp_path, capsys
    ):
        path, manifest = _write_manifest(tmp_path)
        changed = dict(manifest)
        changed["config"] = dict(manifest["config"], seed=9)
        other = tmp_path / "other.json"
        telemetry.write_manifest(changed, str(other))
        assert main(["telemetry", "diff", str(path), str(other)]) == 1
        captured = capsys.readouterr()
        assert "config.seed" in captured.out

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["telemetry", "check", str(missing)]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["telemetry", "frobnicate"])
