"""Tests for the metric registry: kinds, fast path, sessions, merging."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.telemetry import names as metric_names
from repro.telemetry.metrics import MetricsRegistry, merge_snapshots


class TestRegistryKinds:
    def test_counters_accumulate(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("a.b.c")
        reg.inc("a.b.c", 4)
        assert reg.counter("a.b.c") == 5
        assert reg.counter("never.written.metric") == 0

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry(enabled=True)
        reg.set_gauge("a.b.bytes", 10)
        reg.set_gauge("a.b.bytes", 3)
        assert reg.gauge("a.b.bytes") == 3.0
        assert reg.gauge("never.written.metric") is None

    def test_histograms_aggregate_count_sum_min_max(self):
        reg = MetricsRegistry(enabled=True)
        for value in (4.0, 1.0, 7.0):
            reg.observe("a.b.sizes", value)
        snap = reg.snapshot()
        assert snap["histograms"]["a.b.sizes"] == {
            "count": 3,
            "sum": 12.0,
            "min": 1.0,
            "max": 7.0,
        }

    def test_nested_spans_join_into_paths(self):
        reg = MetricsRegistry(enabled=True)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
            with reg.span("inner"):
                pass
        spans = reg.snapshot()["spans"]
        assert set(spans) == {"outer", "outer/inner"}
        assert spans["outer"]["count"] == 1
        assert spans["outer/inner"]["count"] == 2
        assert spans["outer"]["total_s"] >= spans["outer/inner"]["total_s"]

    def test_span_stack_unwinds_on_exception(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(RuntimeError):
            with reg.span("outer"):
                raise RuntimeError("boom")
        with reg.span("after"):
            pass
        assert set(reg.snapshot()["spans"]) == {"outer", "after"}

    def test_reset_clears_values_keeps_enabled(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("a.b.c")
        reg.reset()
        assert reg.enabled
        assert reg.snapshot()["counters"] == {}

    def test_snapshot_is_sorted_and_json_plain(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("z.last.metric")
        reg.inc("a.first.metric")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.first.metric", "z.last.metric"]
        assert set(snap) == {"counters", "gauges", "histograms", "spans"}


class TestModuleFastPath:
    def test_disabled_by_default_and_drops_writes(self):
        with telemetry.session(enabled_=False) as reg:
            assert not telemetry.enabled()
            telemetry.inc(metric_names.SIM_RUNS)
            telemetry.observe(metric_names.KERNELS_VMIN_BATCH, 5)
            telemetry.set_gauge(metric_names.VMIN_CACHE_DISK_BYTES, 1)
            with telemetry.span(metric_names.ORCH_RUN_SPAN):
                pass
            snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["spans"] == {}

    def test_disabled_span_is_shared_noop(self):
        with telemetry.session(enabled_=False):
            a = telemetry.span(metric_names.ORCH_RUN_SPAN)
            b = telemetry.span(metric_names.ORCH_EXPERIMENT_SPAN)
        assert a is b  # one shared allocation-free object

    def test_session_isolates_and_restores(self):
        before = telemetry.get_registry()
        with telemetry.session() as reg:
            telemetry.inc(metric_names.SIM_RUNS, 3)
            assert telemetry.get_registry() is reg
        assert telemetry.get_registry() is before
        assert reg.counter(metric_names.SIM_RUNS) == 3

    def test_sessions_nest(self):
        with telemetry.session() as outer:
            telemetry.inc(metric_names.SIM_RUNS)
            with telemetry.session() as inner:
                telemetry.inc(metric_names.SIM_RUNS)
            telemetry.inc(metric_names.SIM_RUNS)
        assert outer.counter(metric_names.SIM_RUNS) == 2
        assert inner.counter(metric_names.SIM_RUNS) == 1


class TestDeclaredNames:
    def test_all_declared_names_are_dot_scoped_and_unique(self):
        declared = telemetry.declared_names()
        assert declared, "the name registry must not be empty"
        values = list(declared.values())
        assert len(values) == len(set(values))
        for value in values:
            parts = value.split(".")
            assert len(parts) >= 2, value
            for part in parts:
                assert part and part == part.lower(), value


class TestMergeSnapshots:
    def _snap(self, reg_setup):
        reg = MetricsRegistry(enabled=True)
        reg_setup(reg)
        return reg.snapshot()

    def test_counters_sum_gauges_max_histograms_fold(self):
        a = self._snap(
            lambda r: (
                r.inc("c.x.n", 2),
                r.set_gauge("g.x.v", 5),
                r.observe("h.x.s", 1.0),
            )
        )
        b = self._snap(
            lambda r: (
                r.inc("c.x.n", 3),
                r.set_gauge("g.x.v", 2),
                r.observe("h.x.s", 9.0),
            )
        )
        merged = merge_snapshots([a, b])
        assert merged["counters"]["c.x.n"] == 5
        assert merged["gauges"]["g.x.v"] == 5.0
        assert merged["histograms"]["h.x.s"] == {
            "count": 2,
            "sum": 10.0,
            "min": 1.0,
            "max": 9.0,
        }

    def test_merge_is_order_insensitive(self):
        a = self._snap(lambda r: r.inc("c.x.n", 2))
        b = self._snap(lambda r: r.observe("h.x.s", 4.0))
        assert merge_snapshots([a, b]) == merge_snapshots([b, a])

    def test_merge_of_nothing_is_empty(self):
        merged = merge_snapshots([])
        assert merged == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
        }
