"""Determinism regressions: seed threading and hash-seed independence.

Three layers of the reproducibility story:

* the workload generator and the silicon-variation map must replay
  identically for the same seed (and differ across seeds);
* injected RNG streams must be equivalent to the seed-derived default,
  so callers can thread explicit ``random.Random`` instances without
  changing results;
* the orchestrator's merged experiment output must be byte-identical
  under different ``PYTHONHASHSEED`` values — no dict/set hash order
  may leak into golden output.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

from repro.platform.specs import get_spec
from repro.vmin.variation import make_variation_map, variation_rng
from repro.workloads.generator import ServerWorkloadGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestSeedThreading:
    def test_same_seed_same_workload(self):
        a = ServerWorkloadGenerator(max_cores=8, seed=7).generate(900.0)
        b = ServerWorkloadGenerator(max_cores=8, seed=7).generate(900.0)
        assert a == b

    def test_different_seed_different_workload(self):
        a = ServerWorkloadGenerator(max_cores=8, seed=7).generate(900.0)
        b = ServerWorkloadGenerator(max_cores=8, seed=8).generate(900.0)
        assert a.jobs != b.jobs

    def test_injected_rng_matches_derived_default(self):
        gen = ServerWorkloadGenerator(max_cores=8, seed=3)
        implicit = gen.generate(900.0)
        explicit = gen.generate(900.0, rng=gen.rng_for())
        assert implicit == explicit

    def test_injected_rng_controls_the_draws(self):
        gen = ServerWorkloadGenerator(max_cores=8, seed=3)
        other = gen.generate(900.0, rng=random.Random("elsewhere"))
        assert other.jobs != gen.generate(900.0).jobs

    def test_same_seed_same_variation_map(self):
        spec = get_spec("xgene2")
        assert make_variation_map(spec, 5) == make_variation_map(spec, 5)
        assert make_variation_map(spec, 5) != make_variation_map(spec, 6)

    def test_variation_injected_rng_matches_derived_stream(self):
        spec = get_spec("xgene2")
        derived = make_variation_map(spec, 9)
        injected = make_variation_map(spec, rng=variation_rng(spec, 9))
        assert derived == injected

    def test_variation_injected_rng_bypasses_paper_chip(self):
        # An explicit stream means the caller wants the population
        # draw, not the hand-laid paper offsets of (X-Gene 2, seed 0).
        spec = get_spec("xgene2")
        paper = make_variation_map(spec, 0)
        drawn = make_variation_map(spec, 0, rng=variation_rng(spec, 0))
        assert drawn != paper
        assert drawn == make_variation_map(
            spec, 0, rng=variation_rng(spec, 0)
        )


#: Cheap orchestrator subset covering campaign, table and figure paths.
_SUBSET = "table1,fig4,fig5,fig7,fig13"

_SUBPROCESS_SCRIPT = """\
import sys
from repro.experiments.orchestrator import run_experiments
summary = run_experiments(names=sys.argv[1].split(","), jobs=1)
sys.stdout.write(summary.merged_output())
"""


def _run_with_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT, _SUBSET],
        env=env,
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
        check=True,
        timeout=300,
    )
    return result.stdout


class TestHashSeedIndependence:
    def test_merged_output_is_hashseed_independent(self):
        # Two interpreter sessions with different (fixed) hash seeds:
        # any set/dict iteration order leaking into the merged output
        # shows up as a byte difference here.
        first = _run_with_hashseed("0")
        second = _run_with_hashseed("1")
        assert first, "orchestrator subset produced no output"
        assert first == second


class TestManifestDeterminism:
    """Same-seed runs must agree on every non-timing manifest byte."""

    NAMES = ["fig14", "fig5"]
    KWARGS = dict(platform="xgene2", duration_s=60.0, seed=0)

    def _run(self):
        from repro.experiments import orchestrator
        from repro.telemetry import build_manifest
        from repro.vmin.cache import reset_default_cache

        reset_default_cache()
        summary = orchestrator.run_experiments(
            names=self.NAMES, jobs=1, collect_telemetry=True, **self.KWARGS
        )
        return summary, build_manifest(summary, **self.KWARGS)

    def test_metric_snapshots_are_byte_identical(self):
        from repro.telemetry import strip_timing_fields
        from repro.telemetry.manifest import canonical_json

        first, _ = self._run()
        second, _ = self._run()
        for a, b in zip(first.outcomes, second.outcomes):
            # Spans carry wall-clock values and are explicitly excluded;
            # everything else must replay exactly.
            assert canonical_json(
                strip_timing_fields(a.metrics)
            ) == canonical_json(strip_timing_fields(b.metrics))

    def test_manifests_share_fingerprint_and_diff_empty(self):
        from repro.telemetry import diff_manifests

        _, first = self._run()
        _, second = self._run()
        assert first["fingerprint"] == second["fingerprint"]
        assert diff_manifests(first, second) == []

    def test_stripped_manifests_are_byte_identical(self):
        from repro.telemetry import strip_timing_fields
        from repro.telemetry.manifest import (
            FINGERPRINT_EXCLUDED_TOP_KEYS,
            canonical_json,
        )

        _, first = self._run()
        _, second = self._run()
        def deterministic_bytes(manifest):
            payload = {
                key: value
                for key, value in manifest.items()
                if key not in FINGERPRINT_EXCLUDED_TOP_KEYS
            }
            return canonical_json(strip_timing_fields(payload))

        assert deterministic_bytes(first) == deterministic_bytes(second)
