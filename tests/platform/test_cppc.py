"""Tests for the CPPC frequency controller."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.cppc import CppcController
from repro.platform.specs import FrequencyClass
from repro.units import ghz, MHZ


@pytest.fixture
def cppc2(spec2):
    return CppcController(spec2)


@pytest.fixture
def cppc3(spec3):
    return CppcController(spec3)


class TestRequests:
    def test_powers_on_at_fmax(self, cppc2, spec2):
        assert cppc2.frequencies() == (spec2.fmax_hz,) * spec2.n_pmds

    def test_per_pmd_setting(self, cppc2):
        cppc2.request(1, ghz(1.2))
        assert cppc2.frequency_of(1) == ghz(1.2)
        assert cppc2.frequency_of(0) == ghz(2.4)

    def test_request_snaps_to_steps(self, cppc2):
        applied = cppc2.request(0, ghz(1.0))
        assert applied == 900 * MHZ

    def test_request_all(self, cppc2, spec2):
        cppc2.request_all(ghz(1.2))
        assert cppc2.frequencies() == (ghz(1.2),) * spec2.n_pmds

    def test_bad_pmd(self, cppc2):
        with pytest.raises(ConfigurationError):
            cppc2.request(4, ghz(1.2))

    def test_transitions_recorded_only_on_change(self, cppc2):
        cppc2.request(0, ghz(2.4))  # already there
        assert cppc2.transition_count() == 0
        cppc2.request(0, ghz(1.2))
        cppc2.request(0, ghz(1.2))
        assert cppc2.transition_count() == 1


class TestFrequencyClasses:
    def test_worst_class_is_high_when_any_pmd_high(self, cppc2):
        cppc2.request_all(900 * MHZ)
        cppc2.request(3, ghz(2.4))
        assert cppc2.worst_frequency_class() is FrequencyClass.HIGH

    def test_worst_class_subset(self, cppc2):
        cppc2.request_all(ghz(2.4))
        cppc2.request(0, 900 * MHZ)
        assert (
            cppc2.worst_frequency_class([0]) is FrequencyClass.DIVIDE
        )
        assert (
            cppc2.worst_frequency_class([0, 1]) is FrequencyClass.HIGH
        )

    def test_worst_class_empty_subset_is_mildest(self, cppc2):
        assert cppc2.worst_frequency_class([]) is FrequencyClass.DIVIDE

    def test_xgene3_low_is_skip(self, cppc3):
        cppc3.request_all(375 * MHZ)
        assert cppc3.worst_frequency_class() is FrequencyClass.SKIP

    def test_class_of_single_pmd(self, cppc2):
        cppc2.request(2, ghz(1.2))
        assert cppc2.frequency_class_of(2) is FrequencyClass.SKIP


class TestMaxFrequency:
    def test_max_over_all(self, cppc2):
        cppc2.request_all(ghz(1.2))
        cppc2.request(2, ghz(2.4))
        assert cppc2.max_frequency() == ghz(2.4)

    def test_max_over_subset(self, cppc2):
        cppc2.request_all(ghz(1.2))
        cppc2.request(2, ghz(2.4))
        assert cppc2.max_frequency([0, 1]) == ghz(1.2)

    def test_max_of_empty_is_floor(self, cppc2, spec2):
        assert cppc2.max_frequency([]) == spec2.fmin_hz
