"""Tests for the SLIMpro voltage-regulator model."""

import pytest

from repro.errors import VoltageRangeError
from repro.platform.slimpro import SlimPro


@pytest.fixture
def regulator():
    return SlimPro(nominal_mv=980, min_mv=600)


class TestVoltageSetting:
    def test_powers_on_at_nominal(self, regulator):
        assert regulator.voltage_mv == 980

    def test_set_voltage(self, regulator):
        assert regulator.set_voltage(900) == 900
        assert regulator.voltage_mv == 900

    def test_quantizes_up_to_step(self, regulator):
        # Rounding up keeps safe-Vmin floors safe.
        assert regulator.set_voltage(871) == 875
        assert regulator.set_voltage(874.2) == 875

    def test_exact_step_unchanged(self, regulator):
        assert regulator.quantize(875) == 875

    def test_below_min_rejected(self, regulator):
        with pytest.raises(VoltageRangeError):
            regulator.set_voltage(500)

    def test_above_max_rejected(self, regulator):
        with pytest.raises(VoltageRangeError):
            regulator.set_voltage(990)

    def test_max_defaults_to_nominal(self, regulator):
        assert regulator.max_mv == 980

    def test_reset_to_nominal(self, regulator):
        regulator.set_voltage(700)
        assert regulator.reset_to_nominal() == 980


class TestTransitions:
    def test_transitions_recorded(self, regulator):
        regulator.set_voltage(900, time_s=1.0)
        regulator.set_voltage(800, time_s=2.0)
        assert regulator.transition_count() == 2
        first = regulator.transitions[0]
        assert (first.from_mv, first.to_mv, first.time_s) == (980, 900, 1.0)

    def test_no_transition_on_same_voltage(self, regulator):
        regulator.set_voltage(900)
        regulator.set_voltage(900)
        assert regulator.transition_count() == 1

    def test_listener_called(self, regulator):
        seen = []
        regulator.add_listener(lambda old, new: seen.append((old, new)))
        regulator.set_voltage(875)
        assert seen == [(980, 875)]

    def test_listener_not_called_without_change(self, regulator):
        seen = []
        regulator.add_listener(lambda old, new: seen.append((old, new)))
        regulator.set_voltage(980)
        assert seen == []


class TestValidation:
    def test_bad_step(self):
        with pytest.raises(VoltageRangeError):
            SlimPro(nominal_mv=980, min_mv=600, step_mv=0)

    def test_nominal_outside_range(self):
        with pytest.raises(VoltageRangeError):
            SlimPro(nominal_mv=500, min_mv=600)
