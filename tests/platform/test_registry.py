"""Invariant tests of the declarative platform registry.

Every shipped spec file must load, validate, round-trip through the
dict serialization, and satisfy the physical monotonicity the rest of
the stack assumes: a worse droop class never lowers the safe Vmin, a
lower frequency class never raises it, and the calibrated power model
stays inside the TDP envelope.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.platform.registry import (
    default_characterization_grid,
    get_platform,
    load_platform_file,
    model_for_spec,
    model_from_dict,
    model_to_dict,
    platform_key_for_spec,
    platform_keys,
    spec_files,
    try_get_platform,
    validate_model,
)
from repro.platform.specs import FrequencyClass, get_spec
from repro.power.model import PowerModel
from repro.units import ghz
from repro.vmin.droop import DroopModel, droop_ladder
from repro.vmin.faults import FaultModel
from repro.vmin.variation import make_variation_map

ALL_KEYS = platform_keys()


@pytest.fixture(params=ALL_KEYS)
def model(request):
    """Each registered platform bundle in turn."""
    return get_platform(request.param)


class TestSpecFiles:
    def test_three_builtin_platforms(self):
        assert ALL_KEYS == ("xgene2", "xgene3", "xgene3-xl")

    def test_every_shipped_file_loads_and_validates(self):
        for path in spec_files():
            loaded = load_platform_file(path)
            assert validate_model(loaded) == []

    def test_shipped_files_match_registered_models(self):
        by_key = {
            load_platform_file(path).key: load_platform_file(path)
            for path in spec_files()
        }
        for key in ALL_KEYS:
            assert by_key[key] == get_platform(key)

    def test_dict_round_trip_is_identity(self, model):
        assert model_from_dict(model_to_dict(model)) == model

    def test_json_shape_round_trips(self, model):
        # model_to_dict output must survive JSON (the .json loader path).
        import json

        data = json.loads(json.dumps(model_to_dict(model)))
        assert model_from_dict(data) == model


class TestVminMonotonicity:
    def test_vmin_non_decreasing_in_droop_class(self, model):
        for row in model.vmin_base_mv.values():
            assert list(row) == sorted(row)

    def test_lower_frequency_class_never_raises_vmin(self, model):
        order = (
            FrequencyClass.HIGH,
            FrequencyClass.SKIP,
            FrequencyClass.DIVIDE,
        )
        present = [c for c in order if c in model.vmin_base_mv]
        for above, below in zip(present, present[1:]):
            for hi, lo in zip(
                model.vmin_base_mv[above], model.vmin_base_mv[below]
            ):
                assert lo <= hi

    def test_rows_span_the_droop_ladder(self, model):
        n_classes = len(droop_ladder(model.spec))
        for row in model.vmin_base_mv.values():
            assert len(row) == n_classes

    def test_base_vmin_below_nominal(self, model):
        nominal = model.spec.nominal_voltage_mv
        for row in model.vmin_base_mv.values():
            assert max(row) <= nominal


class TestPowerSanity:
    def test_idle_below_max_below_tdp(self, model):
        power = PowerModel(model.spec)
        from repro.platform.chip import ChipState

        idle = power.idle_power_w(
            ChipState(
                spec=model.spec,
                voltage_mv=model.spec.nominal_voltage_mv,
                pmd_frequencies_hz=(model.spec.fmax_hz,)
                * model.spec.n_pmds,
                active_cores=frozenset(),
            )
        )
        assert 0 < idle < power.max_power_w() < model.spec.tdp_w

    def test_thermal_params_resolve(self, model):
        from repro.platform.thermal import ThermalModel

        assert ThermalModel(model.spec).params.resistance_c_per_w > 0


class TestXgene3XL:
    """The spec-file-only platform runs through the same consumer stack."""

    def test_resolves_by_key_and_display_name(self):
        spec = get_spec("xgene3-xl")
        assert spec.n_cores == 64
        assert spec.n_pmds == 32
        assert platform_key_for_spec(spec) == "xgene3-xl"
        assert try_get_platform(spec.name) is get_platform("xgene3-xl")

    def test_fault_params_come_from_the_bundle(self):
        spec = get_spec("xgene3-xl")
        faults = FaultModel(spec=spec)
        params = get_platform("xgene3-xl").faults
        assert faults.MAX_WIDTH_MV == params.max_width_mv
        assert faults.WIDTH_STEP_MV == params.width_step_mv
        assert faults.MIN_WIDTH_MV == params.min_width_mv

    def test_paper_chip_fault_params_equal_class_defaults(self):
        # Bit-for-bit guard: the paper bundles restate the historical
        # class defaults, so cache content keys cannot move.
        default = FaultModel()
        for key in ("xgene2", "xgene3"):
            bundled = FaultModel(spec=get_spec(key))
            assert bundled.MAX_WIDTH_MV == default.MAX_WIDTH_MV
            assert bundled.WIDTH_STEP_MV == default.WIDTH_STEP_MV
            assert bundled.MIN_WIDTH_MV == default.MIN_WIDTH_MV

    def test_characterization_grid_declared(self):
        grid = get_platform("xgene3-xl").characterization
        assert grid.threads == (64, 32, 16)
        assert grid.freqs_hz == (ghz(3.2), ghz(1.6))

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_same_seed_same_silicon(self, silicon_seed):
        spec = get_spec("xgene3-xl")
        first = make_variation_map(spec, silicon_seed)
        second = make_variation_map(spec, silicon_seed)
        assert first.offsets_mv == second.offsets_mv
        assert len(first.offsets_mv) == spec.n_cores
        limit = get_platform("xgene3-xl").variation.max_offset_mv
        assert all(0 <= o <= limit for o in first.offsets_mv)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_droop_model_deterministic(self, seed):
        spec = get_spec("xgene3-xl")
        first = DroopModel(spec, seed=seed)
        second = DroopModel(spec, seed=seed)
        rates = first.rates_per_mcycles(8, FrequencyClass.HIGH)
        assert rates == second.rates_per_mcycles(8, FrequencyClass.HIGH)


class TestRejection:
    def test_unknown_platform_lists_keys(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_platform("epyc")
        assert "xgene3-xl" in str(excinfo.value)

    def test_missing_section_rejected(self):
        data = model_to_dict(get_platform("xgene3"))
        del data["power"]
        with pytest.raises(ConfigurationError):
            model_from_dict(data)

    def test_non_monotonic_droop_row_fails_validation(self):
        data = copy.deepcopy(model_to_dict(get_platform("xgene3")))
        row = data["vmin"]["base_mv"]["high"]
        data["vmin"]["base_mv"]["high"] = list(reversed(row))
        broken = model_from_dict(data)
        assert any(
            "droop" in problem for problem in validate_model(broken)
        )

    def test_vmin_above_nominal_fails_validation(self):
        data = copy.deepcopy(model_to_dict(get_platform("xgene2")))
        data["vmin"]["base_mv"]["high"][-1] = (
            data["chip"]["nominal_voltage_mv"] + 100
        )
        broken = model_from_dict(data)
        assert validate_model(broken) != []

    def test_unknown_frequency_class_rejected(self):
        data = copy.deepcopy(model_to_dict(get_platform("xgene2")))
        data["vmin"]["base_mv"]["turbo"] = [700, 700, 700]
        with pytest.raises(ConfigurationError):
            model_from_dict(data)


class TestDerivedGrid:
    def test_unregistered_spec_gets_derived_grid(self, spec2):
        clone = spec2.__class__(**{**spec2.__dict__, "name": "Clone-8"})
        assert model_for_spec(clone) is None
        grid = default_characterization_grid(clone)
        assert all(1 <= t <= clone.n_cores for t in grid.threads)
        assert set(grid.freqs_hz) <= set(clone.frequency_steps())
