"""Tests for the runtime chip model and its snapshots."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.platform.chip import Chip
from repro.platform.specs import FrequencyClass
from repro.units import ghz, MHZ


class TestOccupancy:
    def test_occupy_and_release(self, chip2):
        chip2.occupy(0, "p1")
        assert chip2.occupant_of(0) == "p1"
        chip2.release(0)
        assert chip2.occupant_of(0) is None

    def test_double_occupy_same_owner_ok(self, chip2):
        chip2.occupy(0, "p1")
        chip2.occupy(0, "p1")
        assert chip2.occupant_of(0) == "p1"

    def test_double_occupy_conflict(self, chip2):
        chip2.occupy(0, "p1")
        with pytest.raises(SchedulingError):
            chip2.occupy(0, "p2")

    def test_release_occupant_frees_all(self, chip2):
        chip2.occupy(0, "p1")
        chip2.occupy(3, "p1")
        chip2.occupy(5, "p2")
        chip2.release_occupant("p1")
        assert chip2.active_cores == frozenset({5})

    def test_cores_of_occupant_sorted(self, chip2):
        chip2.occupy(6, "p1")
        chip2.occupy(2, "p1")
        assert chip2.cores_of_occupant("p1") == (2, 6)

    def test_idle_cores(self, chip2):
        chip2.occupy(0, "p1")
        assert chip2.idle_cores == tuple(range(1, 8))

    def test_occupy_out_of_range(self, chip2):
        with pytest.raises(ConfigurationError):
            chip2.occupy(8, "p1")

    def test_utilized_pmds(self, chip2):
        chip2.occupy(0, "p1")
        chip2.occupy(1, "p1")
        chip2.occupy(6, "p2")
        assert chip2.utilized_pmds == frozenset({0, 3})

    def test_pmd_is_fully_idle(self, chip2):
        chip2.occupy(0, "p1")
        assert not chip2.pmd_is_fully_idle(0)
        assert chip2.pmd_is_fully_idle(1)


class TestKnobs:
    def test_voltage_delegates_to_slimpro(self, chip2):
        chip2.set_voltage(900)
        assert chip2.voltage_mv == 900
        assert chip2.slimpro.transition_count() == 1

    def test_frequency_delegates_to_cppc(self, chip2):
        chip2.set_pmd_frequency(1, ghz(1.2))
        assert chip2.cppc.frequency_of(1) == ghz(1.2)

    def test_set_all_frequencies(self, chip2):
        chip2.set_all_frequencies(900 * MHZ)
        assert chip2.cppc.frequencies() == (900 * MHZ,) * 4

    def test_reset(self, chip2):
        chip2.occupy(0, "p1")
        chip2.set_voltage(700)
        chip2.set_all_frequencies(300 * MHZ)
        chip2.reset()
        assert chip2.voltage_mv == 980
        assert chip2.active_cores == frozenset()
        assert chip2.cppc.frequencies() == (ghz(2.4),) * 4


class TestChipState:
    def test_snapshot_captures_point(self, chip2):
        chip2.occupy(0, "p")
        chip2.set_pmd_frequency(0, ghz(1.2))
        chip2.set_voltage(900)
        state = chip2.state()
        assert state.voltage_mv == 900
        assert state.active_cores == frozenset({0})
        assert state.pmd_frequencies_hz[0] == ghz(1.2)

    def test_snapshot_immutable_after_change(self, chip2):
        state = chip2.state()
        chip2.set_voltage(900)
        assert state.voltage_mv == 980

    def test_active_pmds(self, chip3):
        chip3.occupy(0, "a")
        chip3.occupy(31, "b")
        assert chip3.state().active_pmds == frozenset({0, 15})

    def test_frequency_of_core(self, chip2):
        chip2.set_pmd_frequency(3, ghz(1.2))
        state = chip2.state()
        assert state.frequency_of_core(6) == ghz(1.2)
        assert state.frequency_of_core(0) == ghz(2.4)

    def test_max_active_frequency_idle_is_floor(self, chip2, spec2):
        assert chip2.state().max_active_frequency() == spec2.fmin_hz

    def test_max_active_frequency(self, chip2):
        chip2.set_all_frequencies(ghz(1.2))
        chip2.set_pmd_frequency(2, ghz(2.4))
        chip2.occupy(4, "p")  # core 4 is on PMD 2
        chip2.occupy(0, "q")
        assert chip2.state().max_active_frequency() == ghz(2.4)

    def test_worst_active_frequency_class(self, chip2):
        chip2.set_all_frequencies(900 * MHZ)
        chip2.occupy(0, "p")
        assert (
            chip2.state().worst_active_frequency_class()
            is FrequencyClass.DIVIDE
        )
        chip2.set_pmd_frequency(0, ghz(2.4))
        assert (
            chip2.state().worst_active_frequency_class()
            is FrequencyClass.HIGH
        )

    def test_from_name_factory(self):
        chip = Chip.from_name("xgene3", silicon_seed=5)
        assert chip.spec.n_cores == 32
        assert chip.silicon_seed == 5
