"""Tests for the thermal model (environment extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.thermal import (
    THERMAL_PARAMS,
    ThermalModel,
    ThermalParams,
)


@pytest.fixture
def thermal3(spec3):
    return ThermalModel(spec3)


class TestRcResponse:
    def test_starts_at_ambient(self, thermal3):
        assert thermal3.temperature_c == thermal3.ambient_c

    def test_steady_state(self, thermal3):
        target = thermal3.steady_state_c(40.0)
        assert target == pytest.approx(
            thermal3.ambient_c + 0.45 * 40.0
        )

    def test_approaches_steady_state(self, thermal3):
        for _ in range(200):
            thermal3.step(40.0, 1.0)
        assert thermal3.temperature_c == pytest.approx(
            thermal3.steady_state_c(40.0), abs=0.1
        )

    def test_time_constant_behaviour(self, thermal3):
        # After one time constant the gap closed by ~63%.
        target = thermal3.steady_state_c(40.0)
        start = thermal3.temperature_c
        thermal3.step(40.0, thermal3.params.time_constant_s)
        progress = (thermal3.temperature_c - start) / (target - start)
        assert progress == pytest.approx(0.632, abs=0.01)

    def test_cools_down_when_idle(self, thermal3):
        for _ in range(100):
            thermal3.step(40.0, 1.0)
        hot = thermal3.temperature_c
        for _ in range(100):
            thermal3.step(2.0, 1.0)
        assert thermal3.temperature_c < hot

    def test_zero_dt_noop(self, thermal3):
        before = thermal3.temperature_c
        thermal3.step(40.0, 0.0)
        assert thermal3.temperature_c == before

    def test_reset(self, thermal3):
        thermal3.step(40.0, 100.0)
        thermal3.reset()
        assert thermal3.temperature_c == thermal3.ambient_c

    def test_validation(self, spec3, thermal3):
        with pytest.raises(ConfigurationError):
            thermal3.step(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            thermal3.step(1.0, -1.0)
        with pytest.raises(ConfigurationError):
            ThermalParams(resistance_c_per_w=0, time_constant_s=1)


class TestDerivedEffects:
    def test_leakage_unity_at_calibration(self, thermal3):
        cal = thermal3.params.calibration_c
        assert thermal3.leakage_multiplier(cal) == pytest.approx(1.0)

    def test_leakage_doubles_per_35c(self, thermal3):
        cal = thermal3.params.calibration_c
        assert thermal3.leakage_multiplier(cal + 35.0) == pytest.approx(
            2.0, rel=0.01
        )

    def test_cold_chip_leaks_less(self, thermal3):
        cal = thermal3.params.calibration_c
        assert thermal3.leakage_multiplier(cal - 20.0) < 1.0

    def test_vmin_shift_zero_at_or_below_calibration(self, thermal3):
        cal = thermal3.params.calibration_c
        assert thermal3.vmin_shift_mv(cal) == 0.0
        assert thermal3.vmin_shift_mv(cal - 30.0) == 0.0

    def test_vmin_shift_grows_with_heat(self, thermal3):
        cal = thermal3.params.calibration_c
        assert thermal3.vmin_shift_mv(cal + 20.0) == pytest.approx(7.0)

    def test_params_for_both_platforms(self, spec2, spec3):
        # The small package heats more per watt.
        assert (
            ThermalModel(spec2).params.resistance_c_per_w
            > ThermalModel(spec3).params.resistance_c_per_w
        )

    def test_registered_override_wins(self, spec2):
        custom = ThermalParams(
            resistance_c_per_w=9.0, time_constant_s=1.0
        )
        THERMAL_PARAMS[spec2.name] = custom
        try:
            assert ThermalModel(spec2).params is custom
        finally:
            del THERMAL_PARAMS[spec2.name]

    def test_unknown_platform_needs_params(self, spec2):
        bad = spec2.__class__(**{**spec2.__dict__, "name": "Mystery"})
        with pytest.raises(ConfigurationError):
            ThermalModel(bad)


class TestSystemIntegration:
    def test_disabled_by_default(self, chip2, short_workload2):
        from repro.policies.governors import BaselinePolicy
        from repro.sim import ServerSystem

        system = ServerSystem(
            chip2, short_workload2, BaselinePolicy()
        )
        system.run()
        assert system.thermal is None
        assert system.temperature_series == []

    def test_temperature_tracks_load(self, spec2, short_workload2):
        from repro.platform.chip import Chip
        from repro.policies.governors import BaselinePolicy
        from repro.sim import ServerSystem

        thermal = ThermalModel(spec2)
        system = ServerSystem(
            Chip(spec2),
            short_workload2,
            BaselinePolicy(),
            thermal_model=thermal,
        )
        system.run()
        temps = [t for _, t in system.temperature_series]
        assert temps
        assert max(temps) > thermal.ambient_c + 1.0

    def test_hot_run_uses_more_energy(self, spec2, short_workload2):
        from repro.platform.chip import Chip
        from repro.policies.governors import BaselinePolicy
        from repro.sim import ServerSystem

        def energy(ambient):
            system = ServerSystem(
                Chip(spec2),
                short_workload2,
                BaselinePolicy(),
                thermal_model=ThermalModel(spec2, ambient_c=ambient),
            )
            return system.run().energy_j

        assert energy(60.0) > energy(10.0)

    def test_hot_chip_raises_required_vmin(self, spec2):
        # At an extreme ambient the audit adds the thermal shift: an
        # undervolted-but-normally-safe rail becomes a violation.
        from repro.platform.chip import Chip
        from repro.policies.daemon import OnlineMonitoringDaemon
        from repro.sim import ServerSystem
        from repro.workloads.generator import JobSpec, Workload

        workload = Workload(
            jobs=(JobSpec(0, "namd", 8, 0.0),),
            duration_s=600.0,
            max_cores=8,
            seed=0,
        )

        def violations(ambient):
            system = ServerSystem(
                Chip(spec2),
                workload,
                OnlineMonitoringDaemon(spec2),
                thermal_model=ThermalModel(spec2, ambient_c=ambient),
            )
            return len(system.run().violations)

        assert violations(25.0) == 0
        assert violations(95.0) > 0
