"""Tests for the PMU counter model and its reader front-ends."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.pmu import (
    DROOP_BINS_MV,
    KernelModuleReader,
    PerfToolReader,
    Pmu,
    l3_rate_per_mcycles,
)


@pytest.fixture
def pmu(spec2):
    return Pmu(spec2)


class TestCounters:
    def test_counters_start_at_zero(self, pmu):
        regs = pmu.core(0)
        assert (regs.cycles, regs.instructions, regs.l3_accesses) == (
            0.0,
            0.0,
            0.0,
        )

    def test_advance_accumulates(self, pmu):
        pmu.core(0).advance(1e6, 5e5, 3000)
        pmu.core(0).advance(1e6, 5e5, 1000)
        assert pmu.core(0).cycles == 2e6
        assert pmu.core(0).l3_accesses == 4000

    def test_negative_delta_rejected(self, pmu):
        with pytest.raises(ConfigurationError):
            pmu.core(0).advance(-1, 0, 0)

    def test_core_out_of_range(self, pmu):
        with pytest.raises(ConfigurationError):
            pmu.core(8)

    def test_total_cycles(self, pmu):
        pmu.core(0).advance(100, 0, 0)
        pmu.core(3).advance(50, 0, 0)
        assert pmu.total_cycles() == 150

    def test_reset(self, pmu):
        pmu.core(0).advance(100, 10, 5)
        pmu.record_droops(DROOP_BINS_MV[0], 3)
        pmu.reset()
        assert pmu.total_cycles() == 0
        assert pmu.droop_events[DROOP_BINS_MV[0]] == 0


class TestDroopBins:
    def test_bins_match_paper(self):
        assert DROOP_BINS_MV == ((25, 35), (35, 45), (45, 55), (55, 65))

    def test_record_droops(self, pmu):
        pmu.record_droops((45, 55), 12.5)
        assert pmu.droop_events[(45, 55)] == 12.5

    def test_unknown_bin_rejected(self, pmu):
        with pytest.raises(ConfigurationError):
            pmu.record_droops((10, 20), 1)

    def test_negative_count_rejected(self, pmu):
        with pytest.raises(ConfigurationError):
            pmu.record_droops((45, 55), -1)


class TestReaders:
    def test_kernel_module_reader_exact(self, pmu):
        pmu.core(2).advance(1e6, 8e5, 3200)
        sample = KernelModuleReader(pmu).read(2)
        assert sample.cycles == 1e6
        assert sample.l3_accesses == 3200

    def test_perf_reader_noisy_but_bounded(self, pmu):
        pmu.core(0).advance(1e6, 8e5, 3000)
        reader = PerfToolReader(pmu, noise=0.03, seed=1)
        sample = reader.read(0)
        assert sample.cycles != 1e6  # virtually certain with noise
        assert abs(sample.cycles - 1e6) <= 0.03 * 1e6
        assert abs(sample.l3_accesses - 3000) <= 0.03 * 3000

    def test_perf_reader_noise_validation(self, pmu):
        with pytest.raises(ConfigurationError):
            PerfToolReader(pmu, noise=1.5)

    def test_kernel_reader_cheaper_than_perf(self, pmu):
        assert KernelModuleReader.read_cost_s < PerfToolReader.read_cost_s


class TestL3Rate:
    def test_rate_between_samples(self, pmu):
        reader = KernelModuleReader(pmu)
        before = reader.read(0)
        pmu.core(0).advance(2e6, 1e6, 8000)
        after = reader.read(0)
        assert l3_rate_per_mcycles(before, after) == pytest.approx(4000)

    def test_rate_without_cycles_is_none(self, pmu):
        reader = KernelModuleReader(pmu)
        before = reader.read(0)
        after = reader.read(0)
        assert l3_rate_per_mcycles(before, after) is None
