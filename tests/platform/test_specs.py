"""Tests for chip specifications (paper Table I)."""

import pytest

from repro.errors import ConfigurationError, FrequencyRangeError
from repro.platform.specs import ChipSpec, CacheSpec, FrequencyClass, get_spec
from repro.units import ghz, MHZ


class TestTable1Parameters:
    def test_xgene2_core_count(self, spec2):
        assert spec2.n_cores == 8

    def test_xgene3_core_count(self, spec3):
        assert spec3.n_cores == 32

    def test_xgene2_clock(self, spec2):
        assert spec2.fmax_hz == ghz(2.4)

    def test_xgene3_clock(self, spec3):
        assert spec3.fmax_hz == ghz(3.0)

    def test_nominal_voltages(self, spec2, spec3):
        assert spec2.nominal_voltage_mv == 980
        assert spec3.nominal_voltage_mv == 870

    def test_tdp(self, spec2, spec3):
        assert spec2.tdp_w == 35.0
        assert spec3.tdp_w == 125.0

    def test_technology_nodes(self, spec2, spec3):
        assert spec2.technology_nm == 28
        assert spec3.technology_nm == 16

    def test_l3_sizes(self, spec2, spec3):
        assert spec2.caches.l3_bytes == 8 * 1024 * 1024
        assert spec3.caches.l3_bytes == 32 * 1024 * 1024

    def test_l3_domain_differs(self, spec2, spec3):
        # X-Gene 2's L3 lives outside the PCP domain (Section II.A).
        assert not spec2.caches.l3_in_pcp_domain
        assert spec3.caches.l3_in_pcp_domain

    def test_l2_per_pmd(self, spec2, spec3):
        assert spec2.caches.l2_bytes_per_pmd == 256 * 1024
        assert spec3.caches.l2_bytes_per_pmd == 256 * 1024


class TestPmdTopology:
    def test_pmd_counts(self, spec2, spec3):
        assert spec2.n_pmds == 4
        assert spec3.n_pmds == 16

    def test_pmd_of_core(self, spec2):
        assert spec2.pmd_of_core(0) == 0
        assert spec2.pmd_of_core(1) == 0
        assert spec2.pmd_of_core(2) == 1
        assert spec2.pmd_of_core(7) == 3

    def test_cores_of_pmd(self, spec3):
        assert spec3.cores_of_pmd(0) == (0, 1)
        assert spec3.cores_of_pmd(15) == (30, 31)

    def test_pmd_of_core_out_of_range(self, spec2):
        with pytest.raises(ConfigurationError):
            spec2.pmd_of_core(8)

    def test_cores_of_pmd_out_of_range(self, spec2):
        with pytest.raises(ConfigurationError):
            spec2.cores_of_pmd(4)

    def test_every_core_maps_to_one_pmd(self, spec3):
        seen = []
        for pmd in range(spec3.n_pmds):
            seen.extend(spec3.cores_of_pmd(pmd))
        assert sorted(seen) == list(range(spec3.n_cores))


class TestFrequencySteps:
    def test_xgene2_steps_are_eighths(self, spec2):
        assert spec2.frequency_steps() == tuple(
            300 * MHZ * i for i in range(1, 9)
        )

    def test_xgene3_steps_are_eighths(self, spec3):
        assert spec3.frequency_steps() == tuple(
            375 * MHZ * i for i in range(1, 9)
        )

    def test_half_frequency(self, spec2, spec3):
        assert spec2.half_frequency_hz == ghz(1.2)
        assert spec3.half_frequency_hz == ghz(1.5)

    def test_validate_frequency_accepts_steps(self, spec2):
        for freq in spec2.frequency_steps():
            spec2.validate_frequency(freq)

    def test_validate_frequency_rejects_off_grid(self, spec2):
        with pytest.raises(FrequencyRangeError):
            spec2.validate_frequency(ghz(1.0))

    def test_nearest_frequency_snaps(self, spec2):
        assert spec2.nearest_frequency(ghz(1.0)) == 900 * MHZ
        assert spec2.nearest_frequency(ghz(2.3)) == ghz(2.4)
        assert spec2.nearest_frequency(0) == 300 * MHZ


class TestFrequencyClasses:
    """Section II.B: clock skipping vs clock division semantics."""

    def test_above_half_is_high(self, spec2):
        for freq in (ghz(1.5), ghz(1.8), ghz(2.1), ghz(2.4)):
            assert spec2.frequency_class(freq) is FrequencyClass.HIGH

    def test_half_is_skip(self, spec2, spec3):
        assert (
            spec2.frequency_class(spec2.half_frequency_hz)
            is FrequencyClass.SKIP
        )
        assert (
            spec3.frequency_class(spec3.half_frequency_hz)
            is FrequencyClass.SKIP
        )

    def test_xgene2_below_half_divides(self, spec2):
        # The 0.9 GHz clock-division point of Section II.B.
        assert spec2.frequency_class(900 * MHZ) is FrequencyClass.DIVIDE
        assert spec2.frequency_class(300 * MHZ) is FrequencyClass.DIVIDE

    def test_xgene3_below_half_stays_skip(self, spec3):
        # X-Gene 3 never engages clock division below 1.5 GHz.
        assert spec3.frequency_class(750 * MHZ) is FrequencyClass.SKIP
        assert spec3.frequency_class(375 * MHZ) is FrequencyClass.SKIP


class TestRegistry:
    def test_get_spec_by_names(self):
        # The registry's display-name lookup is itself under test.
        name2 = "X-Gene 2"  # reprolint: disable=RL007 -- lookup under test
        name3 = "X-Gene 3"  # reprolint: disable=RL007 -- lookup under test
        assert get_spec("xgene2").name == name2
        assert get_spec(name3).name == name3
        assert get_spec("XGENE_2").name == name2

    def test_get_spec_unknown(self):
        with pytest.raises(ConfigurationError):
            get_spec("epyc")

    def test_specs_are_fresh_instances(self):
        assert get_spec("xgene2") == get_spec("xgene2")


class TestSpecValidation:
    def test_cores_must_divide_into_pmds(self):
        with pytest.raises(ConfigurationError):
            ChipSpec(
                name="bad",
                n_cores=7,
                cores_per_pmd=2,
                fmax_hz=ghz(2.0),
                fmin_hz=ghz(0.25),
                nominal_voltage_mv=900,
                min_voltage_mv=600,
                tdp_w=10,
                technology_nm=28,
                caches=CacheSpec(1, 1, 1, 1, False),
                memory_bandwidth_bps=1e9,
            )

    def test_fmin_below_fmax(self):
        with pytest.raises(ConfigurationError):
            ChipSpec(
                name="bad",
                n_cores=8,
                cores_per_pmd=2,
                fmax_hz=ghz(1.0),
                fmin_hz=ghz(2.0),
                nominal_voltage_mv=900,
                min_voltage_mv=600,
                tdp_w=10,
                technology_nm=28,
                caches=CacheSpec(1, 1, 1, 1, False),
                memory_bandwidth_bps=1e9,
            )
