"""Tests for the benchmark profile dataclass validation."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.profiles import BenchmarkProfile, Suite


def make_profile(**overrides):
    base = dict(
        name="toy",
        suite=Suite.SPEC_CPU2006,
        parallel=False,
        ref_time_s=100.0,
        mem_fraction=0.5,
        l3_rate_per_mcycles=4000.0,
        bandwidth_gbs=3.0,
        l2_sensitivity=0.5,
        activity=1.0,
        vmin_delta_mv=0.0,
    )
    base.update(overrides)
    return BenchmarkProfile(**base)


class TestValidation:
    def test_valid_profile(self):
        profile = make_profile()
        assert profile.cpu_fraction == 0.5

    @pytest.mark.parametrize("memf", [-0.1, 1.1])
    def test_mem_fraction_bounds(self, memf):
        with pytest.raises(ConfigurationError):
            make_profile(mem_fraction=memf)

    def test_ref_time_positive(self):
        with pytest.raises(ConfigurationError):
            make_profile(ref_time_s=0.0)

    def test_rates_non_negative(self):
        with pytest.raises(ConfigurationError):
            make_profile(l3_rate_per_mcycles=-1.0)
        with pytest.raises(ConfigurationError):
            make_profile(bandwidth_gbs=-1.0)

    def test_l2_sensitivity_bounds(self):
        with pytest.raises(ConfigurationError):
            make_profile(l2_sensitivity=1.2)

    def test_activity_positive(self):
        with pytest.raises(ConfigurationError):
            make_profile(activity=0.0)

    def test_parallel_efficiency_bounds(self):
        with pytest.raises(ConfigurationError):
            make_profile(parallel_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            make_profile(parallel_efficiency=1.2)


class TestDerived:
    def test_cpu_cycles_frequency_invariant_quantity(self):
        profile = make_profile(ref_time_s=10.0, mem_fraction=0.25)
        assert profile.cpu_cycles == pytest.approx(10.0 * 0.75 * 3e9)

    def test_mem_time(self):
        profile = make_profile(ref_time_s=10.0, mem_fraction=0.25)
        assert profile.mem_time_s == pytest.approx(2.5)

    def test_reference_class(self):
        assert make_profile(
            l3_rate_per_mcycles=5000
        ).is_memory_intensive_reference()
        assert not make_profile(
            l3_rate_per_mcycles=500
        ).is_memory_intensive_reference()

    def test_reference_class_custom_threshold(self):
        profile = make_profile(l3_rate_per_mcycles=5000)
        assert not profile.is_memory_intensive_reference(threshold=6000)

    def test_droop_activity_mirrors_activity(self):
        profile = make_profile(activity=1.3)
        assert profile.droop_activity == 1.3

    def test_frozen(self):
        profile = make_profile()
        with pytest.raises(AttributeError):
            profile.activity = 2.0
