"""Tests for phased benchmarks (the paper's case-(b) scenario)."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.phases import (
    PhasedBenchmark,
    WorkloadPhase,
    all_phased,
    get_phased,
    make_phased,
    phase_boundaries,
    profile_at,
    resolve_benchmark,
)
from repro.workloads.suites import get_benchmark


class TestConstruction:
    def test_make_phased(self):
        phased = make_phased("demo", [(0.5, "milc"), (0.5, "namd")])
        assert phased.name == "demo"
        assert len(phased.phases) == 2

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            make_phased("bad", [(0.5, "milc"), (0.4, "namd")])

    def test_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            WorkloadPhase(0.0, get_benchmark("milc"))
        with pytest.raises(ConfigurationError):
            WorkloadPhase(1.5, get_benchmark("milc"))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PhasedBenchmark("empty", ())

    def test_mixed_parallelism_rejected(self):
        with pytest.raises(ConfigurationError):
            make_phased("bad", [(0.5, "CG"), (0.5, "namd")])


class TestDerivedProperties:
    def test_ref_time_weighted(self):
        phased = make_phased("demo", [(0.5, "milc"), (0.5, "namd")])
        milc, namd = get_benchmark("milc"), get_benchmark("namd")
        assert phased.ref_time_s == pytest.approx(
            0.5 * milc.ref_time_s + 0.5 * namd.ref_time_s
        )

    def test_vmin_delta_is_worst_case(self):
        phased = make_phased("demo", [(0.5, "milc"), (0.5, "namd")])
        assert phased.vmin_delta_mv == max(
            get_benchmark("milc").vmin_delta_mv,
            get_benchmark("namd").vmin_delta_mv,
        )

    def test_parallel_flag_shared(self):
        phased = make_phased("demo", [(0.5, "CG"), (0.5, "EP")])
        assert phased.parallel

    def test_mem_fraction_between_extremes(self):
        phased = make_phased("demo", [(0.5, "milc"), (0.5, "namd")])
        assert (
            get_benchmark("namd").mem_fraction
            < phased.mem_fraction
            < get_benchmark("milc").mem_fraction
        )


class TestPhaseLookup:
    def test_profile_at(self):
        phased = make_phased("demo", [(0.3, "mcf"), (0.7, "gamess")])
        assert phased.profile_at(0.0).name == "mcf"
        assert phased.profile_at(0.29).name == "mcf"
        assert phased.profile_at(0.31).name == "gamess"
        assert phased.profile_at(1.0).name == "gamess"

    def test_boundaries(self):
        phased = make_phased(
            "demo", [(0.25, "mcf"), (0.25, "gamess"), (0.5, "mcf")]
        )
        assert phased.boundaries() == pytest.approx([0.25, 0.5])

    def test_static_profile_helpers(self):
        milc = get_benchmark("milc")
        assert profile_at(milc, 0.7) is milc
        assert phase_boundaries(milc) == []

    def test_negative_progress_rejected(self):
        phased = get_phased("sawtooth")
        with pytest.raises(ConfigurationError):
            phased.profile_at(-0.1)


class TestRegistry:
    def test_builtins_available(self):
        names = {p.name for p in all_phased()}
        assert {
            "stream-compute",
            "setup-then-crunch",
            "compute-then-writeback",
            "sawtooth",
        } <= names

    def test_unknown_phased(self):
        with pytest.raises(ConfigurationError):
            get_phased("mystery")

    def test_resolver_handles_both(self):
        assert resolve_benchmark("CG").name == "CG"
        assert resolve_benchmark("sawtooth").name == "sawtooth"

    def test_sawtooth_alternates(self):
        sawtooth = get_phased("sawtooth")
        kinds = [
            sawtooth.profile_at(f).is_memory_intensive_reference()
            for f in (0.05, 0.2, 0.3, 0.45)
        ]
        assert kinds == [True, False, True, False]
