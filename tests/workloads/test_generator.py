"""Tests for the server workload generator (paper Section VI.B)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.generator import ServerWorkloadGenerator, Workload
from repro.workloads.suites import evaluation_pool, get_benchmark


@pytest.fixture
def workload32():
    return ServerWorkloadGenerator(max_cores=32, seed=1).generate(1800)


class TestGeneration:
    def test_jobs_generated(self, workload32):
        assert len(workload32) > 20

    def test_arrivals_inside_window(self, workload32):
        for job in workload32.jobs:
            assert 0 <= job.start_time_s <= workload32.duration_s

    def test_jobs_sorted_by_time(self, workload32):
        ordered = workload32.jobs_sorted()
        times = [j.start_time_s for j in ordered]
        assert times == sorted(times)

    def test_reproducible_by_seed(self):
        a = ServerWorkloadGenerator(max_cores=32, seed=9).generate(600)
        b = ServerWorkloadGenerator(max_cores=32, seed=9).generate(600)
        assert a.jobs == b.jobs

    def test_seeds_differ(self):
        a = ServerWorkloadGenerator(max_cores=32, seed=1).generate(600)
        b = ServerWorkloadGenerator(max_cores=32, seed=2).generate(600)
        assert a.jobs != b.jobs

    def test_pool_is_35_programs(self):
        # Section VI.B: 29 SPEC + 6 NPB.
        generator = ServerWorkloadGenerator(max_cores=32)
        assert len(generator.pool) == 35

    def test_benchmarks_come_from_pool(self, workload32):
        pool_names = {p.name for p in evaluation_pool()}
        assert {j.benchmark for j in workload32.jobs} <= pool_names


class TestCapacityGuarantee:
    """Section VI.B: never more active threads than cores."""

    @pytest.mark.parametrize("max_cores", [8, 32])
    def test_estimated_occupancy_within_cores(self, max_cores):
        workload = ServerWorkloadGenerator(
            max_cores=max_cores, seed=3
        ).generate(1200)
        horizon = int(workload.duration_s) + 2000
        occupancy = np.zeros(horizon)
        for job in workload.jobs:
            profile = get_benchmark(job.benchmark)
            est = profile.ref_time_s
            if profile.parallel and job.nthreads > 1:
                est /= job.nthreads * profile.parallel_efficiency
            lo = int(job.start_time_s)
            hi = min(horizon, int(np.ceil(job.start_time_s + 1.25 * est)))
            occupancy[lo:hi] += job.nthreads
        assert occupancy.max() <= max_cores

    def test_spec_jobs_single_threaded(self, workload32):
        for job in workload32.jobs:
            if not get_benchmark(job.benchmark).parallel:
                assert job.nthreads == 1

    def test_parallel_jobs_multi_threaded(self, workload32):
        parallel = [
            j
            for j in workload32.jobs
            if get_benchmark(j.benchmark).parallel
        ]
        assert parallel
        assert all(j.nthreads >= 2 for j in parallel)

    def test_threads_fit_small_machine(self):
        workload = ServerWorkloadGenerator(max_cores=8, seed=5).generate(
            600
        )
        assert all(j.nthreads <= 8 for j in workload.jobs)


class TestLoadPhases:
    def test_includes_idle_and_busy_stretches(self):
        # The phase mix gives heavy, light and idle periods (Fig. 15).
        workload = ServerWorkloadGenerator(max_cores=32, seed=0).generate(
            3600
        )
        per_minute = np.zeros(61)
        for job in workload.jobs:
            per_minute[int(job.start_time_s // 60)] += 1
        assert (per_minute == 0).any()
        assert per_minute.max() >= 3

    def test_total_threads_issued(self, workload32):
        assert workload32.total_threads_issued() >= len(workload32)


class TestValidation:
    def test_bad_core_count(self):
        with pytest.raises(ConfigurationError):
            ServerWorkloadGenerator(max_cores=0)

    def test_bad_duration(self):
        with pytest.raises(ConfigurationError):
            ServerWorkloadGenerator(max_cores=8).generate(0)

    def test_bad_phase_bounds(self):
        with pytest.raises(ConfigurationError):
            ServerWorkloadGenerator(
                max_cores=8, phase_min_s=100, phase_max_s=50
            )

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerWorkloadGenerator(max_cores=8, pool=[])


class TestSerialization:
    def test_json_roundtrip(self):
        workload = ServerWorkloadGenerator(max_cores=8, seed=4).generate(
            400.0
        )
        restored = Workload.from_json(workload.to_json())
        assert restored == workload

    def test_roundtripped_workload_replays_identically(self):
        from repro.platform.chip import Chip
        from repro.platform.specs import xgene2_spec
        from repro.policies.governors import BaselinePolicy
        from repro.sim import ServerSystem

        original = ServerWorkloadGenerator(max_cores=8, seed=4).generate(
            300.0
        )
        restored = Workload.from_json(original.to_json())
        spec = xgene2_spec()
        a = ServerSystem(
            Chip(spec), original, BaselinePolicy()
        ).run()
        b = ServerSystem(
            Chip(spec), restored, BaselinePolicy()
        ).run()
        assert a.energy_j == b.energy_j
        assert a.makespan_s == b.makespan_s

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError):
            Workload.from_json('{"jobs": [{"nope": 1}]}')
