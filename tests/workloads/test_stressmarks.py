"""Tests for the stressmark (micro-virus) fast-characterization path."""

import pytest

from repro.core.policy import VminPolicyTable
from repro.platform.specs import FrequencyClass
from repro.vmin.droop import droop_ladder
from repro.vmin.model import VminModel
from repro.workloads.stressmarks import (
    didt_virus,
    memory_virus,
    stressmark_set,
)
from repro.workloads.suites import all_benchmarks, characterization_set


class TestProfiles:
    def test_didt_virus_worst_delta(self):
        virus = didt_virus()
        assert virus.vmin_delta_mv >= max(
            p.vmin_delta_mv for p in all_benchmarks()
        )

    def test_didt_virus_worst_activity(self):
        virus = didt_virus()
        assert virus.activity >= max(p.activity for p in all_benchmarks())

    def test_memory_virus_saturates_bandwidth(self):
        virus = memory_virus()
        assert virus.bandwidth_gbs >= max(
            p.bandwidth_gbs for p in all_benchmarks()
        )

    def test_memory_virus_classifies_memory(self):
        assert memory_virus().is_memory_intensive_reference()

    def test_set_contains_both(self):
        names = {p.name for p in stressmark_set()}
        assert names == {"didt_virus", "memory_virus"}


class TestFastCharacterization:
    """A stressmark-built table bounds the full 25-benchmark table."""

    @pytest.mark.parametrize("platform_seed", [0, 4])
    def test_stressmark_table_covers_benchmark_table(
        self, spec2, platform_seed
    ):
        model = VminModel(spec2, silicon_seed=platform_seed)
        fast = VminPolicyTable.from_characterization(
            spec2, vmin_model=model, benchmarks=stressmark_set()
        )
        full = VminPolicyTable.from_characterization(
            spec2, vmin_model=model, benchmarks=characterization_set()
        )
        for droop_class in range(len(droop_ladder(spec2))):
            for freq_class in (
                FrequencyClass.HIGH,
                FrequencyClass.SKIP,
                FrequencyClass.DIVIDE,
            ):
                assert (
                    fast.entry(freq_class, droop_class).vmin_mv
                    >= full.entry(freq_class, droop_class).vmin_mv
                )

    def test_stressmark_table_safe_against_every_benchmark(self, spec3):
        from repro.allocation import Allocation, cores_for

        model = VminModel(spec3)
        fast = VminPolicyTable.from_characterization(
            spec3, vmin_model=model, benchmarks=stressmark_set()
        )
        for nthreads in (1, 4, 16, 32):
            for allocation in (Allocation.CLUSTERED, Allocation.SPREADED):
                cores = cores_for(spec3, nthreads, allocation)
                pmds = len({spec3.pmd_of_core(c) for c in cores})
                level = fast.safe_voltage_mv(pmds, spec3.fmax_hz)
                for profile in characterization_set():
                    assert level >= model.safe_vmin_mv(
                        spec3.fmax_hz, cores, profile.vmin_delta_mv
                    )

    def test_fast_campaign_is_cheaper(self):
        # 2 stressmarks vs 25 benchmarks: the point of micro-viruses.
        assert len(stressmark_set()) < len(characterization_set()) / 10

    def test_stressmark_overhead_bounded(self, spec2):
        # The bound must not be uselessly loose: within ~2 campaign
        # steps of the full table everywhere.
        model = VminModel(spec2)
        fast = VminPolicyTable.from_characterization(
            spec2, vmin_model=model, benchmarks=stressmark_set()
        )
        full = VminPolicyTable.from_characterization(
            spec2, vmin_model=model, benchmarks=characterization_set()
        )
        for droop_class in range(len(droop_ladder(spec2))):
            gap = (
                fast.entry(FrequencyClass.HIGH, droop_class).vmin_mv
                - full.entry(FrequencyClass.HIGH, droop_class).vmin_mv
            )
            assert 0 <= gap <= 20
