"""Tests for the benchmark registry and suite composition."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.profiles import Suite
from repro.workloads.suites import (
    all_benchmarks,
    characterization_set,
    evaluation_pool,
    figure11_set,
    get_benchmark,
    suite_benchmarks,
)


class TestComposition:
    def test_total_pool_size(self):
        assert len(all_benchmarks()) == 41  # 6 NPB + 29 SPEC + 6 PARSEC

    def test_npb_names(self):
        names = {p.name for p in suite_benchmarks(Suite.NPB)}
        assert names == {"CG", "EP", "FT", "IS", "LU", "MG"}

    def test_parsec_names(self):
        names = {p.name for p in suite_benchmarks(Suite.PARSEC)}
        assert names == {
            "swaptions", "blackscholes", "fluidanimate",
            "canneal", "bodytrack", "dedup",
        }

    def test_spec_has_29(self):
        spec = suite_benchmarks(Suite.SPEC_CPU2006)
        assert len(spec) == 29
        assert sum(1 for p in spec if p.spec_class == "INT") == 12
        assert sum(1 for p in spec if p.spec_class == "FP") == 17

    def test_characterization_set_is_25(self):
        # Section II.B: 6 NPB + 6 PARSEC + 13 SPEC.
        subset = characterization_set()
        assert len(subset) == 25
        suites = [p.suite for p in subset]
        assert suites.count(Suite.NPB) == 6
        assert suites.count(Suite.PARSEC) == 6
        assert suites.count(Suite.SPEC_CPU2006) == 13

    def test_evaluation_pool_is_35(self):
        # Section VI.B: 29 SPEC + 6 NPB.
        pool = evaluation_pool()
        assert len(pool) == 35
        assert not any(p.suite is Suite.PARSEC for p in pool)

    def test_figure11_set_order(self):
        names = [p.name for p in figure11_set()]
        assert names == ["namd", "EP", "milc", "CG", "FT"]

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigurationError):
            get_benchmark("doom")


class TestProfileSemantics:
    def test_spec_profiles_are_single_threaded(self):
        assert all(
            not p.parallel for p in suite_benchmarks(Suite.SPEC_CPU2006)
        )

    def test_npb_parsec_are_parallel(self):
        assert all(p.parallel for p in suite_benchmarks(Suite.NPB))
        assert all(p.parallel for p in suite_benchmarks(Suite.PARSEC))

    def test_extremes_match_paper(self):
        # Fig. 8 commentary: namd/EP most CPU-intensive, CG/FT most
        # memory-intensive.
        namd = get_benchmark("namd")
        cg = get_benchmark("CG")
        assert namd.mem_fraction < 0.05
        assert cg.mem_fraction > 0.7

    def test_threshold_separates_classes(self):
        # Fig. 9: the 3K threshold separates memory-intensive programs.
        mem = {
            p.name
            for p in all_benchmarks()
            if p.is_memory_intensive_reference()
        }
        assert {"CG", "FT", "mcf", "milc", "lbm", "libquantum"} <= mem
        assert {"namd", "EP", "hmmer", "povray", "gamess"}.isdisjoint(mem)

    def test_memory_intensity_correlates_with_l3_rate(self):
        pool = sorted(all_benchmarks(), key=lambda p: p.mem_fraction)
        low_quarter = pool[:10]
        high_quarter = pool[-10:]
        assert max(
            p.l3_rate_per_mcycles for p in low_quarter
        ) < min(p.l3_rate_per_mcycles for p in high_quarter)

    def test_vmin_deltas_bounded(self):
        # Section III.A: workload Vmin variation up to ~40 mV total.
        for profile in all_benchmarks():
            assert abs(profile.vmin_delta_mv) <= 20.0

    def test_cpu_cycles_plus_mem_time_consistent(self):
        for profile in all_benchmarks():
            recomputed = (
                profile.cpu_cycles / 3e9 + profile.mem_time_s
            )
            assert recomputed == pytest.approx(profile.ref_time_s)
