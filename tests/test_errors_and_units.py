"""Tests for the exception hierarchy and unit helpers."""

import pytest

from repro import errors
from repro.units import (
    GHZ,
    MHZ,
    ONE_MILLION_CYCLES,
    fmt_freq,
    fmt_mv,
    ghz,
    hz_to_ghz,
    joules,
    mhz,
    mv_to_v,
    v_to_mv,
)


class TestExceptionHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "VoltageRangeError",
            "FrequencyRangeError",
            "PlacementError",
            "SchedulingError",
            "SimulationError",
            "CharacterizationError",
            "VoltageFault",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_fault_family(self):
        for cls in (
            errors.SilentDataCorruption,
            errors.SystemCrash,
            errors.ThreadHang,
            errors.ProcessTimeout,
        ):
            assert issubclass(cls, errors.VoltageFault)

    def test_fault_kinds_distinct(self):
        kinds = {
            errors.SilentDataCorruption.kind,
            errors.SystemCrash.kind,
            errors.ThreadHang.kind,
            errors.ProcessTimeout.kind,
        }
        assert kinds == {"sdc", "crash", "hang", "timeout"}

    def test_fault_carries_voltage(self):
        fault = errors.SystemCrash(742.0)
        assert fault.voltage_mv == 742.0
        assert "742" in str(fault)

    def test_fault_custom_message(self):
        fault = errors.SilentDataCorruption(800, "checksum mismatch")
        assert str(fault) == "checksum mismatch"

    def test_single_except_clause_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.ThreadHang(750)


class TestUnits:
    def test_constants(self):
        assert GHZ == 1_000_000_000
        assert MHZ == 1_000_000
        assert ONE_MILLION_CYCLES == 1_000_000

    def test_ghz_mhz(self):
        assert ghz(2.4) == 2_400_000_000
        assert mhz(900) == 900_000_000
        assert hz_to_ghz(1_500_000_000) == 1.5

    def test_voltage_conversions(self):
        assert mv_to_v(980) == 0.98
        assert v_to_mv(0.87) == pytest.approx(870)

    def test_joules(self):
        assert joules(10.0, 3.5) == 35.0

    def test_fmt_freq(self):
        assert fmt_freq(ghz(2.4)) == "2.4GHz"
        assert fmt_freq(ghz(3.0)) == "3GHz"
        assert fmt_freq(mhz(900)) == "900MHz"
        assert fmt_freq(mhz(375)) == "375MHz"

    def test_fmt_mv(self):
        assert fmt_mv(870) == "870mV"
        assert fmt_mv(912.6) == "913mV"
