"""Tests for the chip power model."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.chip import ChipState
from repro.power.model import POWER_PARAMS, PowerModel
from repro.units import ghz


def idle_state(spec, voltage_mv=None, freq_hz=None):
    return ChipState(
        spec=spec,
        voltage_mv=voltage_mv or spec.nominal_voltage_mv,
        pmd_frequencies_hz=(freq_hz or spec.fmax_hz,) * spec.n_pmds,
        active_cores=frozenset(),
    )


def busy_state(spec, cores, voltage_mv=None, freq_hz=None):
    return ChipState(
        spec=spec,
        voltage_mv=voltage_mv or spec.nominal_voltage_mv,
        pmd_frequencies_hz=(freq_hz or spec.fmax_hz,) * spec.n_pmds,
        active_cores=frozenset(cores),
    )


class TestComponentScaling:
    def test_dynamic_power_quadratic_in_voltage(self, power3, spec3):
        hi = power3.core_dynamic_w(spec3.fmax_hz, 870, 1.0)
        lo = power3.core_dynamic_w(spec3.fmax_hz, 435, 1.0)
        assert hi / lo == pytest.approx(4.0)

    def test_dynamic_power_linear_in_frequency(self, power3, spec3):
        hi = power3.core_dynamic_w(ghz(3.0), 870, 1.0)
        lo = power3.core_dynamic_w(ghz(1.5), 870, 1.0)
        assert hi / lo == pytest.approx(2.0)

    def test_dynamic_power_linear_in_activity(self, power3, spec3):
        one = power3.core_dynamic_w(spec3.fmax_hz, 870, 1.0)
        half = power3.core_dynamic_w(spec3.fmax_hz, 870, 0.5)
        assert one / half == pytest.approx(2.0)

    def test_leakage_superlinear_in_voltage(self, power3):
        hi = power3.core_leakage_w(870)
        lo = power3.core_leakage_w(783)  # 10% lower
        assert hi / lo > 1.2

    def test_negative_activity_rejected(self, power3, spec3):
        with pytest.raises(ConfigurationError):
            power3.core_dynamic_w(spec3.fmax_hz, 870, -0.1)

    def test_zero_voltage_rejected(self, power3, spec3):
        with pytest.raises(ConfigurationError):
            power3.core_dynamic_w(spec3.fmax_hz, 0, 1.0)

    def test_gated_pmd_cheaper(self, power3, spec3):
        busy = power3.pmd_overhead_w(spec3.fmax_hz, 870, gated=False)
        gated = power3.pmd_overhead_w(spec3.fmax_hz, 870, gated=True)
        assert gated < busy


class TestUncore:
    def test_xgene3_uncore_scales_with_rail(self, power3):
        nominal = power3.uncore_power_w(870, 0.5)
        reduced = power3.uncore_power_w(783, 0.5)
        assert reduced < nominal

    def test_xgene2_uncore_off_rail(self, power2):
        # Section II.A: the X-Gene 2 L3 is in a separate domain.
        assert power2.uncore_power_w(980, 0.5) == power2.uncore_power_w(
            880, 0.5
        )

    def test_utilization_raises_uncore(self, power3):
        assert power3.uncore_power_w(870, 1.0) > power3.uncore_power_w(
            870, 0.0
        )

    def test_bad_utilization(self, power3):
        with pytest.raises(ConfigurationError):
            power3.uncore_power_w(870, 1.5)


class TestChipPower:
    def test_idle_below_busy(self, power3, spec3):
        idle = power3.chip_power(idle_state(spec3), {}, 0.0).total_w
        loads = {c: 1.0 for c in range(spec3.n_cores)}
        busy = power3.chip_power(
            busy_state(spec3, range(spec3.n_cores)), loads, 1.0
        ).total_w
        assert busy > 3 * idle

    def test_max_power_near_tdp(self, power2, power3, spec2, spec3):
        # Calibration sanity: all-cores-busy inside the TDP envelope.
        assert 0.4 * spec2.tdp_w < power2.max_power_w() < spec2.tdp_w
        assert 0.4 * spec3.tdp_w < power3.max_power_w() < spec3.tdp_w

    def test_voltage_reduction_saves_power(self, power3, spec3):
        loads = {c: 1.0 for c in range(8)}
        nominal = power3.chip_power(
            busy_state(spec3, range(8)), loads, 0.3
        ).total_w
        reduced = power3.chip_power(
            busy_state(spec3, range(8), voltage_mv=800), loads, 0.3
        ).total_w
        assert reduced < nominal

    def test_frequency_reduction_saves_power(self, power3, spec3):
        loads = {c: 1.0 for c in range(8)}
        fast = power3.chip_power(
            busy_state(spec3, range(8)), loads, 0.3
        ).total_w
        slow = power3.chip_power(
            busy_state(spec3, range(8), freq_hz=ghz(1.5)), loads, 0.3
        ).total_w
        assert slow < fast

    def test_breakdown_sums_to_total(self, power3, spec3):
        loads = {c: 0.8 for c in range(4)}
        breakdown = power3.chip_power(
            busy_state(spec3, range(4)), loads, 0.2
        )
        assert breakdown.total_w == pytest.approx(
            breakdown.dynamic_w
            + breakdown.leakage_w
            + breakdown.pmd_overhead_w
            + breakdown.uncore_w
            + breakdown.external_w
        )

    def test_external_power_constant(self, power3, spec3):
        idle = power3.chip_power(idle_state(spec3), {}, 0.0)
        busy = power3.chip_power(
            busy_state(spec3, range(32)),
            {c: 1.0 for c in range(32)},
            1.0,
        )
        assert idle.external_w == busy.external_w > 0

    def test_clustered_cheaper_than_spreaded_idle_pmds(
        self, power2, spec2
    ):
        # The power half of the Fig. 7 trade-off: 4 busy cores on 2 PMDs
        # draw less than on 4 PMDs at equal clocks and activity.
        loads4 = {c: 1.0 for c in (0, 1, 2, 3)}
        clustered = power2.chip_power(
            busy_state(spec2, (0, 1, 2, 3)), loads4, 0.2
        ).total_w
        loads_spread = {c: 1.0 for c in (0, 2, 4, 6)}
        spreaded = power2.chip_power(
            busy_state(spec2, (0, 2, 4, 6)), loads_spread, 0.2
        ).total_w
        assert clustered < spreaded

    def test_unknown_platform_needs_params(self, spec2):
        bad = spec2.__class__(**{**spec2.__dict__, "name": "Mystery"})
        with pytest.raises(ConfigurationError):
            PowerModel(bad)
        # But explicit params work.
        model = PowerModel(bad, params=PowerModel(spec2).params)
        assert model.idle_power_w(idle_state(bad)) > 0

    def test_registered_override_wins(self, spec2):
        custom = PowerModel(spec2).params.__class__(
            uncore_w=1.0,
            core_dyn_max_w=1.0,
            core_leak_w=0.1,
            pmd_overhead_w=0.1,
            uncore_on_rail=False,
        )
        POWER_PARAMS[spec2.name] = custom
        try:
            assert PowerModel(spec2).params is custom
        finally:
            del POWER_PARAMS[spec2.name]
