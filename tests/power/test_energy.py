"""Tests for energy accounting and E/D metrics (paper Section V)."""

import pytest

from repro.errors import ConfigurationError
from repro.power.energy import (
    EnergyMeter,
    RunEnergy,
    ed2p,
    edp,
    penalty_percent,
    savings_percent,
)


class TestMetrics:
    def test_edp(self):
        assert edp(100.0, 10.0) == 1000.0

    def test_ed2p(self):
        assert ed2p(100.0, 10.0) == 10000.0

    def test_ed2p_weighs_delay_more(self):
        # Halving energy while doubling delay worsens ED2P.
        assert ed2p(50, 20) > ed2p(100, 10)

    def test_paper_table3_baseline_ed2p(self):
        # Table III: E=25578.30 J, D=3707 s -> ED2P = 351e9.
        assert ed2p(25578.30, 3707) == pytest.approx(351e9, rel=0.01)

    def test_savings_percent(self):
        assert savings_percent(100.0, 75.0) == pytest.approx(25.0)
        assert savings_percent(100.0, 110.0) == pytest.approx(-10.0)

    def test_penalty_percent(self):
        assert penalty_percent(3707, 3829) == pytest.approx(3.29, abs=0.01)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            savings_percent(0.0, 1.0)


class TestEnergyMeter:
    def test_accumulates(self):
        meter = EnergyMeter()
        meter.accumulate(10.0, 5.0)
        meter.accumulate(20.0, 5.0)
        assert meter.energy_j == 150.0
        assert meter.elapsed_s == 10.0
        assert meter.average_power_w == 15.0

    def test_zero_interval_noop(self):
        meter = EnergyMeter()
        meter.accumulate(10.0, 0.0)
        assert meter.energy_j == 0.0

    def test_negative_interval_rejected(self):
        meter = EnergyMeter()
        with pytest.raises(ConfigurationError):
            meter.accumulate(10.0, -1.0)

    def test_negative_power_rejected(self):
        meter = EnergyMeter()
        with pytest.raises(ConfigurationError):
            meter.accumulate(-1.0, 1.0)

    def test_average_power_empty(self):
        assert EnergyMeter().average_power_w == 0.0

    def test_samples_kept_on_request(self):
        meter = EnergyMeter(keep_samples=True)
        meter.accumulate(10.0, 1.0)
        meter.accumulate(12.0, 2.0)
        assert meter.samples == [(0.0, 1.0, 10.0), (1.0, 2.0, 12.0)]

    def test_samples_not_kept_by_default(self):
        meter = EnergyMeter()
        meter.accumulate(10.0, 1.0)
        assert meter.samples == []

    def test_meter_ed2p(self):
        meter = EnergyMeter()
        meter.accumulate(10.0, 10.0)
        assert meter.ed2p() == ed2p(100.0, 10.0)
        assert meter.ed2p(delay_s=5.0) == ed2p(100.0, 5.0)


class TestRunEnergy:
    def test_derived_metrics(self):
        run = RunEnergy(duration_s=10.0, energy_j=100.0)
        assert run.average_power_w == 10.0
        assert run.edp == 1000.0
        assert run.ed2p == 10000.0

    def test_normalization(self):
        # Section II.B: N instances -> energy / N.
        run = RunEnergy(duration_s=10.0, energy_j=100.0)
        normalized = run.normalized(4)
        assert normalized.energy_j == 25.0
        assert normalized.duration_s == 10.0

    def test_normalization_validates(self):
        run = RunEnergy(duration_s=10.0, energy_j=100.0)
        with pytest.raises(ConfigurationError):
            run.normalized(0)

    def test_zero_duration_power(self):
        assert RunEnergy(0.0, 0.0).average_power_w == 0.0
