"""Incremental analysis cache: reuse, invalidation, equivalence.

The cache must never change *what* is reported — only how much gets
re-parsed. These tests pin the three contracts: a warm no-change run
analyzes zero files, editing a callee transitively re-analyzes its
dependents, and findings are byte-identical with and without the
cache.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from reprolint.cache import AnalysisCache, CACHE_VERSION
from reprolint.driver import analyze_paths
from reprolint.rules import ALL_RULES, PROGRAM_RULES


@pytest.fixture
def project(tmp_path):
    """Three-file project: uses.py -> helpers.py, lone.py isolated."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    (tmp_path / "helpers.py").write_text(
        "def offset():\n    return 1\n"
    )
    (tmp_path / "uses.py").write_text(
        "from helpers import offset\n"
        "\n"
        "\n"
        "def use():\n"
        "    return offset()\n"
    )
    (tmp_path / "lone.py").write_text("def alone():\n    return 0\n")
    return tmp_path


def run(project_dir, **kwargs):
    kwargs.setdefault("cache_dir", project_dir / ".reprolint-cache")
    return analyze_paths(
        [project_dir],
        ALL_RULES,
        program_rules=PROGRAM_RULES,
        root=project_dir,
        **kwargs,
    )


class TestWarmRuns:
    def test_cold_run_analyzes_everything(self, project):
        _, stats = run(project)
        assert stats.files_total == 3
        assert stats.files_analyzed == 3
        assert stats.files_from_cache == 0

    def test_warm_no_change_run_analyzes_nothing(self, project):
        run(project)
        _, stats = run(project)
        assert stats.files_analyzed == 0
        assert stats.files_from_cache == 3

    def test_touch_without_content_change_stays_warm(self, project):
        run(project)
        (project / "lone.py").touch()
        _, stats = run(project)
        assert stats.files_analyzed == 0


class TestInvalidation:
    def test_editing_a_callee_reanalyzes_the_dependent(self, project):
        run(project)
        (project / "helpers.py").write_text(
            "def offset():\n    return 2\n"
        )
        _, stats = run(project)
        # helpers.py changed; uses.py depends on it transitively and
        # must be re-analyzed; lone.py stays cached.
        assert stats.files_analyzed == 2
        assert stats.files_from_cache == 1

    def test_editing_a_leaf_reanalyzes_only_it(self, project):
        run(project)
        (project / "lone.py").write_text(
            "def alone():\n    return 9\n"
        )
        _, stats = run(project)
        assert stats.files_analyzed == 1
        assert stats.files_from_cache == 2

    def test_corrupt_cache_reads_as_cold(self, project):
        run(project)
        data = project / ".reprolint-cache" / "summaries.json"
        data.write_text("{not json")
        _, stats = run(project)
        assert stats.files_analyzed == 3

    def test_version_skew_reads_as_cold(self, project):
        run(project)
        data = project / ".reprolint-cache" / "summaries.json"
        payload = json.loads(data.read_text())
        payload["version"] = CACHE_VERSION - 1
        data.write_text(json.dumps(payload))
        _, stats = run(project)
        assert stats.files_analyzed == 3


class TestEquivalence:
    @pytest.fixture
    def flagged_project(self, tmp_path):
        """Project with a cross-file RL008 mismatch (converter away)."""
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        (tmp_path / "helpers.py").write_text(
            "from repro.units import mv_to_v\n"
            "\n"
            "\n"
            "def rail_volts(raw_mv):\n"
            "    return mv_to_v(raw_mv)\n"
        )
        (tmp_path / "uses.py").write_text(
            "from helpers import rail_volts\n"
            "\n"
            "\n"
            "def guardband(voltage_mv):\n"
            "    return voltage_mv - 50.0\n"
            "\n"
            "\n"
            "def bad(raw_mv):\n"
            "    return guardband(rail_volts(raw_mv))\n"
        )
        return tmp_path

    def test_warm_findings_match_cold_and_uncached(self, flagged_project):
        cold, _ = run(flagged_project)
        warm, stats = run(flagged_project)
        uncached, _ = run(flagged_project, cache_dir=None)
        assert stats.files_analyzed == 0
        assert [f.as_dict() for f in cold] == [
            f.as_dict() for f in warm
        ]
        assert [f.as_dict() for f in cold] == [
            f.as_dict() for f in uncached
        ]
        assert any(f.rule_id == "RL008" for f in cold)

    def test_cross_file_rl009_propagates(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        (tmp_path / "clock.py").write_text(
            "import time\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        (tmp_path / "keys.py").write_text(
            "from repro.vmin.cache import cache_key_producer\n"
            "\n"
            "from clock import stamp\n"
            "\n"
            "\n"
            "@cache_key_producer\n"
            "def make_key(cfg):\n"
            "    return (cfg, indirect())\n"
            "\n"
            "\n"
            "def indirect():\n"
            "    return stamp()\n"
        )
        findings, _ = analyze_paths(
            [tmp_path],
            [],
            program_rules=PROGRAM_RULES,
            root=tmp_path,
        )
        rl009 = [f for f in findings if f.rule_id == "RL009"]
        assert len(rl009) == 1
        assert "`keys.indirect` -> `clock.stamp`" in rl009[0].message
        assert "transitively impure" in rl009[0].message


class TestCacheStore:
    def test_cache_dir_is_self_gitignoring(self, project):
        run(project)
        gitignore = project / ".reprolint-cache" / ".gitignore"
        assert gitignore.read_text() == "*\n"

    def test_store_roundtrips_entries(self, project):
        run(project)
        cache = AnalysisCache.load(project / ".reprolint-cache")
        assert set(cache.files) == {"helpers.py", "uses.py", "lone.py"}
        assert cache.deps["uses.py"] == ["helpers.py"]
