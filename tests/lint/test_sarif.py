"""SARIF 2.1.0 output: schema shape, locations, rule catalogue."""

from __future__ import annotations

import json

from reprolint.engine import Finding
from reprolint.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    render_sarif,
)

RULES = (
    ("RL000", "suppression hygiene"),
    ("RL008", "interprocedural units inference"),
)

FINDING = Finding(
    rule_id="RL008",
    path="src/repro/vmin/model.py",
    line=42,
    col=7,
    message="unit mismatch: argument flows V into parameter `x`",
)


class TestSarifShape:
    def test_top_level_schema_shape(self):
        log = render_sarif([FINDING], RULES)
        assert log["$schema"] == SARIF_SCHEMA
        assert log["version"] == SARIF_VERSION
        assert isinstance(log["runs"], list) and len(log["runs"]) == 1
        run = log["runs"][0]
        assert set(run) == {"tool", "results"}
        assert run["tool"]["driver"]["name"] == "reprolint"

    def test_rule_catalogue_entries(self):
        log = render_sarif([], RULES)
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["RL000", "RL008"]
        for rule in rules:
            assert rule["shortDescription"]["text"]
            assert rule["name"].startswith("Reprolint")

    def test_result_location_is_one_based_column(self):
        log = render_sarif([FINDING], RULES)
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "RL008"
        assert result["level"] == "error"
        assert result["message"]["text"] == FINDING.message
        location = result["locations"][0]["physicalLocation"]
        assert (
            location["artifactLocation"]["uri"]
            == "src/repro/vmin/model.py"
        )
        # SARIF regions are 1-based; reprolint cols are 0-based.
        assert location["region"]["startLine"] == 42
        assert location["region"]["startColumn"] == 8

    def test_rule_index_points_into_the_catalogue(self):
        log = render_sarif([FINDING], RULES)
        run = log["runs"][0]
        (result,) = run["results"]
        index = result["ruleIndex"]
        assert (
            run["tool"]["driver"]["rules"][index]["id"]
            == result["ruleId"]
        )

    def test_unknown_rule_omits_index(self):
        odd = Finding(
            rule_id="RLXXX", path="x.py", line=1, col=0, message="m"
        )
        log = render_sarif([odd], RULES)
        (result,) = log["runs"][0]["results"]
        assert "ruleIndex" not in result

    def test_log_is_json_serializable(self):
        log = render_sarif([FINDING], RULES)
        assert json.loads(json.dumps(log)) == log

    def test_windows_paths_become_uris(self):
        finding = Finding(
            rule_id="RL000",
            path="src\\repro\\x.py",
            line=1,
            col=0,
            message="m",
        )
        log = render_sarif([finding], RULES)
        (result,) = log["runs"][0]["results"]
        uri = result["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]["uri"]
        assert uri == "src/repro/x.py"
