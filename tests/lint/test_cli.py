"""CLI behavior: formats, exit codes, selection, shim entry point."""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from reprolint.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def dirty_tree(tmp_path):
    """A fake project with one RL005-able file and a pyproject."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    src = tmp_path / "src" / "repro" / "sim"
    src.mkdir(parents=True)
    (src / "hot.py").write_text(
        "from dataclasses import dataclass\n"
        "\n"
        "\n"
        "@dataclass\n"
        "class Sample:\n"
        "    t_s: float\n"
    )
    return tmp_path


def run_cli(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code, out, _ = run_cli([str(tmp_path / "ok.py")], capsys)
        assert code == 0
        assert "clean" in out

    def test_findings_exit_one(self, dirty_tree, capsys):
        code, out, _ = run_cli(
            [str(dirty_tree / "src"), "--select", "RL005"], capsys
        )
        assert code == 1
        assert "RL005" in out
        assert "1 finding" in out

    def test_missing_target_exits_two(self, capsys):
        code, _, err = run_cli(["definitely/not/here"], capsys)
        assert code == 2
        assert "no such file" in err

    def test_unknown_rule_id_is_usage_error(self, dirty_tree, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([str(dirty_tree / "src"), "--select", "RL999"])
        assert excinfo.value.code == 2


class TestFormats:
    def test_json_format_is_machine_readable(self, dirty_tree, capsys):
        code, out, _ = run_cli(
            [
                str(dirty_tree / "src"),
                "--select",
                "RL005",
                "--format",
                "json",
            ],
            capsys,
        )
        assert code == 1
        payload = json.loads(out)
        assert len(payload) == 1
        entry = payload[0]
        assert entry["rule"] == "RL005"
        assert entry["line"] == 5
        assert entry["col"] == 0
        assert entry["path"].endswith("hot.py")

    def test_github_format_emits_error_commands(
        self, dirty_tree, capsys
    ):
        code, out, _ = run_cli(
            [
                str(dirty_tree / "src"),
                "--select",
                "RL005",
                "--format",
                "github",
            ],
            capsys,
        )
        assert code == 1
        line = out.strip().splitlines()[0]
        assert line.startswith("::error file=")
        assert "line=5" in line
        # GitHub columns are 1-based; the AST col_offset 0 maps to 1.
        assert "col=1" in line
        assert "reprolint RL005" in line

    def test_github_format_escapes_newlines_and_percent(self):
        from reprolint.cli import _escape_data

        assert _escape_data("a%b\nc\rd") == "a%25b%0Ac%0Dd"

    def test_list_rules(self, capsys):
        code, out, _ = run_cli(["--list-rules"], capsys)
        assert code == 0
        for rule_id in ("RL000", "RL001", "RL002", "RL003", "RL004",
                        "RL005"):
            assert rule_id in out


class TestModuleEntryPoint:
    def test_python_dash_m_reprolint_from_repo_root(self, tmp_path):
        # The root shim must make `python -m reprolint` work from a
        # fresh checkout with nothing installed.
        (tmp_path / "clean.py").write_text("x = 1\n")
        result = subprocess.run(
            [sys.executable, "-m", "reprolint", str(tmp_path)],
            cwd=str(REPO_ROOT),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "clean" in result.stdout

    def test_fixture_walks_are_excluded_by_default(self, tmp_path):
        # Directory walks skip lint fixture corpora (files meant to be
        # flagged); pointing the CLI at an explicit fixture file still
        # lints it. The copy lives outside a `tests/` path segment so
        # it is not exempted as test code.
        target = tmp_path / "lint" / "fixtures"
        target.mkdir(parents=True)
        shutil.copy(FIXTURES / "rl005_bad.py", target / "rl005_bad.py")
        assert main([str(tmp_path)]) == 0
        assert main([str(target / "rl005_bad.py")]) == 1


class TestSarifFormat:
    def test_sarif_output_shape(self, dirty_tree, capsys):
        code, out, _ = run_cli(
            [
                str(dirty_tree / "src"),
                "--select",
                "RL005",
                "--format",
                "sarif",
                "--no-cache",
            ],
            capsys,
        )
        assert code == 1
        log = json.loads(out)
        assert log["version"] == "2.1.0"
        assert "sarif-2.1.0" in log["$schema"]
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        (result,) = run["results"]
        assert result["ruleId"] == "RL005"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 5
        assert region["startColumn"] == 1


class TestCacheFlags:
    def test_stats_line_reports_cache_reuse(self, dirty_tree, capsys):
        args = [str(dirty_tree / "src"), "--select", "RL005"]
        _, _, err_cold = run_cli(args, capsys)
        _, _, err_warm = run_cli(args, capsys)
        assert "analyzed 1 of 1 files (0 from cache)" in err_cold
        assert "analyzed 0 of 1 files (1 from cache)" in err_warm

    def test_no_cache_always_analyzes(self, dirty_tree, capsys):
        args = [
            str(dirty_tree / "src"),
            "--select",
            "RL005",
            "--no-cache",
        ]
        run_cli(args, capsys)
        _, _, err = run_cli(args, capsys)
        assert "analyzed 1 of 1 files" in err
        assert not (dirty_tree / ".reprolint-cache").exists()


class TestChangedMode:
    @pytest.fixture
    def git_project(self, dirty_tree):
        def git(*args):
            subprocess.run(
                ["git", "-C", str(dirty_tree), *args],
                check=True,
                capture_output=True,
                env={
                    "GIT_AUTHOR_NAME": "t",
                    "GIT_AUTHOR_EMAIL": "t@t",
                    "GIT_COMMITTER_NAME": "t",
                    "GIT_COMMITTER_EMAIL": "t@t",
                    "PATH": "/usr/bin:/bin:/usr/local/bin",
                },
            )

        git("init", "-q")
        git("add", "-A")
        git("commit", "-q", "-m", "seed")
        return dirty_tree

    def test_unchanged_tree_reports_nothing(self, git_project, capsys):
        code, out, _ = run_cli(
            [
                str(git_project / "src"),
                "--select",
                "RL005",
                "--changed",
                "HEAD",
            ],
            capsys,
        )
        assert code == 0
        assert "clean" in out

    def test_changed_file_is_reported(self, git_project, capsys):
        hot = git_project / "src" / "repro" / "sim" / "hot.py"
        hot.write_text(hot.read_text() + "\n")
        code, out, _ = run_cli(
            [
                str(git_project / "src"),
                "--select",
                "RL005",
                "--changed",
                "HEAD",
            ],
            capsys,
        )
        assert code == 1
        assert "RL005" in out

    def test_unknown_ref_is_usage_error(self, git_project, capsys):
        code, _, err = run_cli(
            [
                str(git_project / "src"),
                "--changed",
                "no-such-ref",
            ],
            capsys,
        )
        assert code == 2
        assert "reprolint:" in err
