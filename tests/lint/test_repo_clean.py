"""The repository must lint clean under its own invariant checker.

This is the self-application gate: any regression that reintroduces a
magic unit conversion, an unseeded RNG, a slot-less hot dataclass, a
registry drift, an impure key producer — or, via the whole-program
rules, an interprocedural unit mismatch or a transitively impure
cache key — fails this test before CI's ``lint-invariants`` job ever
sees it.
"""

from __future__ import annotations

from pathlib import Path

from reprolint.driver import analyze_paths
from reprolint.rules import ALL_RULES, PROGRAM_RULES, PROJECT_RULES

REPO_ROOT = Path(__file__).resolve().parents[2]


def _formatted(findings):
    return "\n".join(
        f"{f.location}: {f.rule_id} {f.message}" for f in findings
    )


def test_repository_is_reprolint_clean():
    findings, stats = analyze_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"],
        ALL_RULES,
        PROJECT_RULES,
        PROGRAM_RULES,
        root=REPO_ROOT,
    )
    assert not findings, f"reprolint findings:\n{_formatted(findings)}"
    assert stats.files_analyzed == stats.files_total


def test_tools_tree_is_reprolint_clean():
    # The linter must also hold itself to its own rules — including
    # the whole-program passes.
    findings, _ = analyze_paths(
        [REPO_ROOT / "tools"],
        ALL_RULES,
        program_rules=PROGRAM_RULES,
        root=REPO_ROOT,
    )
    assert not findings, f"reprolint findings:\n{_formatted(findings)}"
