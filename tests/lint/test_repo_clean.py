"""The repository must lint clean under its own invariant checker.

This is the self-application gate: any regression that reintroduces a
magic unit conversion, an unseeded RNG, a slot-less hot dataclass, a
registry drift or an impure key producer fails this test before CI's
``lint-invariants`` job ever sees it.
"""

from __future__ import annotations

from pathlib import Path

from reprolint.engine import lint_paths
from reprolint.rules import ALL_RULES, PROJECT_RULES

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_is_reprolint_clean():
    findings = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"],
        ALL_RULES,
        PROJECT_RULES,
        root=REPO_ROOT,
    )
    formatted = "\n".join(
        f"{f.location}: {f.rule_id} {f.message}" for f in findings
    )
    assert not findings, f"reprolint findings:\n{formatted}"


def test_tools_tree_is_reprolint_clean():
    # The linter must also hold itself to its own rules.
    findings = lint_paths(
        [REPO_ROOT / "tools"], ALL_RULES, root=REPO_ROOT
    )
    formatted = "\n".join(
        f"{f.location}: {f.rule_id} {f.message}" for f in findings
    )
    assert not findings, f"reprolint findings:\n{formatted}"
