"""Engine robustness: broken targets become findings, not tracebacks.

A file that fails to parse — or cannot even be decoded — must surface
as a structured RL000 diagnostic (file, reason) and a non-zero exit,
because pre-commit and CI consume the findings stream, not stderr.
"""

from __future__ import annotations

from pathlib import Path

from reprolint.cli import main
from reprolint.driver import analyze_paths
from reprolint.engine import lint_file, lint_paths
from reprolint.rules import ALL_RULES, PROGRAM_RULES


def _write_syntax_error(tmp_path: Path) -> Path:
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n    pass\n")
    return path


def _write_undecodable(tmp_path: Path) -> Path:
    path = tmp_path / "binary.py"
    path.write_bytes(b"\xff\xfe\x00 not utf-8")
    return path


class TestSyntaxErrors:
    def test_lint_file_reports_rl000_with_location(self, tmp_path):
        findings = lint_file(_write_syntax_error(tmp_path), ALL_RULES)
        assert [f.rule_id for f in findings] == ["RL000"]
        finding = findings[0]
        assert "does not parse" in finding.message
        assert finding.line == 1
        assert finding.path.endswith("broken.py")

    def test_lint_paths_keeps_going_past_broken_files(self, tmp_path):
        _write_syntax_error(tmp_path)
        (tmp_path / "fine.py").write_text("x = 1\n")
        findings = lint_paths([tmp_path], ALL_RULES)
        assert [f.rule_id for f in findings] == ["RL000"]

    def test_analyze_paths_reports_and_continues(self, tmp_path):
        _write_syntax_error(tmp_path)
        (tmp_path / "fine.py").write_text("x = 1\n")
        findings, stats = analyze_paths(
            [tmp_path],
            ALL_RULES,
            program_rules=PROGRAM_RULES,
            root=tmp_path,
        )
        assert [f.rule_id for f in findings] == ["RL000"]
        assert stats.files_analyzed == 2

    def test_cli_exits_one(self, tmp_path, capsys):
        path = _write_syntax_error(tmp_path)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "RL000" in out
        assert "does not parse" in out


class TestUndecodableBytes:
    def test_lint_file_reports_rl000(self, tmp_path):
        findings = lint_file(_write_undecodable(tmp_path), ALL_RULES)
        assert [f.rule_id for f in findings] == ["RL000"]
        assert "not valid utf-8" in findings[0].message

    def test_cli_exits_one(self, tmp_path, capsys):
        path = _write_undecodable(tmp_path)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "RL000" in out
        assert "not valid utf-8" in out

    def test_analyze_paths_caches_the_failure(self, tmp_path):
        _write_undecodable(tmp_path)
        cache_dir = tmp_path / ".reprolint-cache"
        first, _ = analyze_paths(
            [tmp_path], ALL_RULES, root=tmp_path, cache_dir=cache_dir
        )
        second, stats = analyze_paths(
            [tmp_path], ALL_RULES, root=tmp_path, cache_dir=cache_dir
        )
        assert stats.files_analyzed == 0
        assert [f.as_dict() for f in first] == [
            f.as_dict() for f in second
        ]
