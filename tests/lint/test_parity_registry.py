"""Runtime validation of the kernel/scalar parity registry."""

from __future__ import annotations

from repro.kernels.parity import PARITY, SCALAR_ONLY, verify_parity


def test_verify_parity_resolves_every_entry():
    pairs = verify_parity()
    assert len(pairs) == len(PARITY)
    assert dict(pairs) == PARITY


def test_tables_are_disjoint_and_reasoned():
    assert not set(PARITY) & set(SCALAR_ONLY)
    for name, reason in SCALAR_ONLY.items():
        assert reason.strip(), name


def test_known_mirrors_present():
    # The load-bearing mirrors the sweep tests rely on.
    assert (
        PARITY["repro.vmin.model.VminModel.evaluate"]
        == "repro.kernels.vmin.evaluate_grid"
    )
    assert (
        PARITY["repro.power.model.PowerModel.chip_power"]
        == "repro.kernels.power.chip_power_grid"
    )
