"""RL004 fixture: impure cache-key producers."""

import os
import time

from repro.vmin.cache import cache_key_producer

_COUNTER = 0


@cache_key_producer
def key_with_env(name: str) -> str:
    return name + os.environ["CACHE_SALT"]  # line 13


@cache_key_producer
def key_with_getenv(name: str) -> str:
    return name + (os.getenv("CACHE_SALT") or "")  # line 18


@cache_key_producer
def key_with_clock(name: str) -> str:
    return f"{name}/{time.time()}"  # line 23


@cache_key_producer
def key_with_global(name: str) -> str:
    global _COUNTER  # line 28
    _COUNTER += 1
    return f"{name}/{_COUNTER}"
