"""Fixture: registry-keyed dispatch (X-Gene 3 in a docstring is prose)."""

from repro.platform.registry import get_platform, platform_key_for_spec


def dispatch(spec):
    """Dispatch on the registry key, never on X-Gene 2's display name."""
    if platform_key_for_spec(spec) == "xgene3":
        return 32
    return 8


def header(spec):
    return f"safe Vmin ({spec.name})"


def display_name(key):
    return get_platform(key).spec.name
