"""RL009 fixture: a cache key that is impure only through callees."""

import time

from repro.vmin.cache import cache_key_producer


@cache_key_producer
def campaign_key(config):
    return (tuple(sorted(config.items())), _token())


def _token():
    return _now()


def _now():
    return time.time()
