"""Fixture: actuation described as Actions, applied via the funnel."""

from repro.policies.actuation import apply_action
from repro.policies.surfaces import Action


def park_all(system, spec):
    pmds = range(spec.cores // spec.cores_per_pmd)
    action = Action(
        pmd_freqs_hz={pmd: spec.fmin_hz for pmd in pmds},
        voltage_mv=spec.vmin_baseline_mv,
    )
    apply_action(system, action)
    return action
