"""RL005 fixture: slot-less hot dataclasses and float equality."""

from dataclasses import dataclass


@dataclass  # line 6
class EventRecord:
    t_s: float


@dataclass(frozen=True)  # line 11
class GridSlice:
    values: tuple


def exactly_zero(pfail: float) -> bool:
    return pfail == 0.0  # line 17


def not_one(ratio: float) -> bool:
    return ratio != 1.0  # line 21
