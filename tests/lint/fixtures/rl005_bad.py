"""RL005 fixture: slot-less hot dataclasses and float equality."""

from dataclasses import dataclass


@dataclass  # line 6
class EventRecord:
    t_s: float


@dataclass(frozen=True)  # line 11
class GridSlice:
    values: tuple


def exactly_zero(pfail: float) -> bool:
    return pfail == 0.0  # line 17


def not_one(ratio: float) -> bool:
    return ratio != 1.0  # line 21


class Rescheduler:
    def __init__(self, events):
        self.events = events

    def retime(self, old, time_s):
        self.events.cancel(old)  # line 29
        return self.events.schedule(time_s, "finish")

    def retime_guarded(self, old, time_s):
        if old is not None:
            self.events.cancel(old)  # line 34
        return self.events.schedule(time_s, "finish")
