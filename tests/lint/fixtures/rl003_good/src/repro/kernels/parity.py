"""Complete parity registry: every public scalar accounted for."""

PARITY = {
    "repro.vmin.model.evaluate_point": "repro.kernels.vmin.evaluate_point_grid",
    "repro.vmin.model.MiniModel.score": "repro.kernels.vmin.score_grid",
}

SCALAR_ONLY = {
    "repro.vmin.model.helper": "sign flip convenience; trivially inlined",
}
