"""Mini scalar model, fully registered."""

from dataclasses import dataclass


def evaluate_point(x):
    return x * 2


def helper(x):
    return -x


def _private(x):
    return x


@dataclass
class Breakdown:
    # Dataclasses are records, not scalar evaluations: not enumerated.
    total: float

    def as_tuple(self):
        return (self.total,)


class MiniModel:
    def score(self, x):
        return x * 3

    @property
    def name(self):
        return "mini"

    @classmethod
    def for_chip(cls):
        return cls()

    def _internal(self, x):
        return x
