"""RL001 fixture: the idiomatic spellings that must NOT be flagged."""

from repro.units import GHZ, ghz, hz_to_ghz, mv_to_v

freq_hz = ghz(2.4)
cycles = 42_000_000


def label(freq_hz: float) -> str:
    return f"{hz_to_ghz(freq_hz):.1f} GHz"


def named_constant(freq_hz: float) -> float:
    return freq_hz / GHZ


def volts(voltage_mv: float) -> float:
    return mv_to_v(voltage_mv)


def not_a_unit(cycles: int) -> float:
    # cycles are not a physical unit tracked by repro.units.
    return cycles / 1e6
