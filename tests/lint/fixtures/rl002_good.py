"""RL002 fixture: seeded, sorted, clock-free — must NOT be flagged."""

import random

import numpy as np


def seeded(seed: int) -> random.Random:
    return random.Random(seed)


def seeded_np(seed: int):
    return np.random.default_rng(seed)


def threaded(rng: random.Random) -> float:
    return rng.uniform(0.0, 1.0)


def sorted_iteration(cores):
    out = []
    for core in sorted(set(cores)):
        out.append(core)
    return out


def plain_variable_iteration(cores):
    # Iterating a *variable* is fine: the rule only flags syntactic
    # set expressions, where hash order is certain.
    return [c for c in cores]
