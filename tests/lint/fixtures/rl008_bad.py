"""RL008 fixture: unit flows that disagree across call frames."""

from repro.units import Millivolts, mv_to_v


def apply_guardband(voltage_mv: float) -> float:
    return voltage_mv - 50.0


def converted(raw_mv: float) -> float:
    return mv_to_v(raw_mv)


def rail_volts(raw_mv: float) -> float:
    return converted(raw_mv)


def guardbanded_rail(raw_mv: float) -> float:
    rail = rail_volts(raw_mv)
    return apply_guardband(rail)


def mixed_operands(delta_mhz: float, delta_hz: float) -> float:
    return delta_mhz + delta_hz


def declared_rail_mv(raw_mv: float) -> Millivolts:
    return converted(raw_mv)
