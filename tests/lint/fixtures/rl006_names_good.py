"""RL006 fixture: well-formed metric-name registry — must NOT be flagged."""

from typing import Final

SIM_RUNS = "sim.run.completed"
SIM_TICKS: Final = "sim.events.ticks"
DAEMON_REPLANS = "daemon.placement.replans"

#: Lower-case helpers are not registry constants.
_prefix = "sim"
