"""Fixture: direct hardware actuation outside the control plane."""


def undervolt(chip, now):
    chip.set_voltage(700, now)


def pin_clock(chip, freq_hz, now):
    chip.set_pmd_frequency(0, freq_hz, now)
    chip.cppc.request(1, freq_hz, now)


def park_all(chip, spec, now):
    chip.set_all_frequencies(spec.fmin_hz, now)
    return chip.cppc.request_all(spec.fmin_hz, now)


def rail_write(slimpro, now):
    slimpro.set_voltage_mv(880, now)
