"""Broken parity registry: dangling kernel, stale key, empty reason."""

PARITY = {
    "repro.vmin.model.evaluate_point": "repro.kernels.vmin.missing_grid",
    "repro.vmin.model.ghost": "repro.kernels.vmin.evaluate_point_grid",
}

SCALAR_ONLY = {
    "repro.vmin.model.helper": "",
}
