"""Mini kernels module."""


def evaluate_point_grid(xs):
    return [x * 2 for x in xs]
