"""Mini fault module: nothing public on purpose."""
