"""Mini scalar model with one unregistered public callable."""


def evaluate_point(x):
    return x * 2


def orphan_fn(x):  # line 8: in neither PARITY nor SCALAR_ONLY
    return x + 1


def helper(x):
    return -x


def _private(x):
    return x
