"""Mini power module: nothing public on purpose."""
