"""RL005 fixture: slotted dataclasses, tolerant floats — NOT flagged."""

import math
from dataclasses import dataclass


@dataclass(slots=True)
class EventRecord:
    t_s: float


@dataclass(frozen=True, slots=True)
class GridSlice:
    values: tuple


def effectively_zero(pfail: float) -> bool:
    return pfail <= 0.0


def near_one(ratio: float) -> bool:
    return math.isclose(ratio, 1.0)


def int_equality(count: int) -> bool:
    return count == 0
