"""RL005 fixture: slotted dataclasses, tolerant floats — NOT flagged."""

import math
from dataclasses import dataclass


@dataclass(slots=True)
class EventRecord:
    t_s: float


@dataclass(frozen=True, slots=True)
class GridSlice:
    values: tuple


def effectively_zero(pfail: float) -> bool:
    return pfail <= 0.0


def near_one(ratio: float) -> bool:
    return math.isclose(ratio, 1.0)


def int_equality(count: int) -> bool:
    return count == 0


class Rescheduler:
    def __init__(self, events):
        self.events = events

    def retime(self, old, time_s):
        # Not adjacent: bookkeeping separates the cancel from the
        # schedule, which is the shape of an elision-guarded site.
        if old is not None:
            self.events.cancel(old)
        self._pending = None
        return self.events.schedule(time_s, "finish")

    def hand_off(self, old, time_s, other_queue):
        self.events.cancel(old)
        return other_queue.schedule(time_s, "finish")
