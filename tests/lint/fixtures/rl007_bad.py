"""Fixture: chip display-name literals outside the platform registry."""

SPEC_NAME = "X-Gene 2"


def dispatch(spec):
    if spec.name == "X-Gene 3":
        return 32
    return 8


def not_xgene2(spec):
    return spec.name != "X-Gene 2"


def header(spec):
    return f"safe Vmin ({spec.name} vs X-Gene 3)"
