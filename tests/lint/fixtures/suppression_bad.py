"""Suppression fixture: reason-less waiver silences nothing (RL000)."""

freq_hz = 2_400_000_000

display = freq_hz / 1e9  # reprolint: disable=RL001
