"""Suppression fixture: a reasoned waiver silences its finding."""

freq_hz = 2_400_000_000

display = freq_hz / 1e9  # reprolint: disable=RL001 -- axis label literal, checked in test_plots
