"""RL006 fixture: malformed metric-name registry module."""

SIM_RUNS = "sim.run.completed"
SIM_TICKS = "SimTicks"  # line 4: not dot.scoped
DAEMON_REPLANS = "replans"  # line 5: single scope, no dot
DAEMON_RETUNES = "sim.run.completed"  # line 6: duplicate of SIM_RUNS
SIM_SPANS = 7  # line 7: not a string literal
