"""RL006 fixture: inline-built metric names at telemetry call sites."""

from repro import telemetry
from repro.telemetry import names as metric_names


def record(kind: str, depth: int) -> None:
    telemetry.inc("sim.events.dispatched")  # line 8: raw literal
    telemetry.inc(f"sim.events.{kind}")  # line 9: f-string
    telemetry.observe("queue." + kind, depth)  # line 10: concatenation
    telemetry.set_gauge(name=str(depth), value=depth)  # line 11: computed
    with telemetry.span(kind):  # line 12: arbitrary variable
        pass


def fine(depth: int) -> None:
    telemetry.inc(metric_names.SIM_EVENTS_DISPATCHED)
    telemetry.observe(metric_names.ORCH_QUEUE_DEPTH, depth)
