"""RL006 fixture: registry-constant metric names — must NOT be flagged."""

from repro import telemetry
from repro.telemetry import names as metric_names


def record(count: int) -> None:
    telemetry.inc(metric_names.SIM_EVENTS_DISPATCHED, count)
    telemetry.set_gauge(metric_names.VMIN_CACHE_DISK_BYTES, count)
    telemetry.observe(telemetry.names.ORCH_QUEUE_DEPTH, count)
    with telemetry.span(metric_names.ORCH_RUN_SPAN):
        pass


def unrelated(label: str) -> None:
    # Same method names on non-telemetry objects are not metric calls.
    registry = {}
    registry.setdefault(label, 0)
    print(f"status: {label}")
