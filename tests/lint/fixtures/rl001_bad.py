"""RL001 fixture: magic conversions and suffix contradictions."""

from repro.units import hz_to_ghz, mv_to_v

freq_hz = 2_400_000_000
voltage_mv = 980.0
rail_v = 0.98


def label(freq_hz: float) -> str:
    return f"{freq_hz / 1e9:.1f} GHz"  # line 11: div by 1e9


def to_millivolts(voltage: float) -> float:
    return voltage * 1000  # line 15: mult by 1000


def wrong_suffix_div() -> float:
    return hz_to_ghz(freq_ghz)  # line 19: _ghz arg into hz_to_ghz


def wrong_suffix_volt() -> float:
    return mv_to_v(rail_v)  # line 23: _v arg into mv_to_v


freq_ghz = 2.4
