"""RL008 fixture: unit-correct flows the rule must not flag."""

from repro.units import Millivolts, Volts, mv_to_v


def apply_guardband(voltage_mv: float) -> float:
    return voltage_mv - 50.0


def guardbanded(raw_mv: float) -> float:
    return apply_guardband(raw_mv)


def rail_volts(raw_mv: Millivolts) -> Volts:
    return mv_to_v(raw_mv)


def compare_rails(a_mv: float, b_mv: float) -> bool:
    return a_mv < b_mv


def scaled(value_mv: float, gain: float) -> float:
    return value_mv * gain + 25.0
