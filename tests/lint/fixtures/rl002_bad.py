"""RL002 fixture: nondeterminism in a deterministic module."""

import random
import time
from datetime import datetime

import numpy as np


def unseeded() -> random.Random:
    return random.Random()  # line 11


def unseeded_np():
    return np.random.default_rng()  # line 15


def global_stream() -> float:
    return random.uniform(0.0, 1.0)  # line 19


def global_np() -> float:
    return np.random.normal()  # line 23


def stamped() -> float:
    return time.time()  # line 27


def dated():
    return datetime.now()  # line 31


def hash_order(cores):
    out = []
    for core in {0, 1, 2}:  # line 36
        out.append(core)
    return [c for c in set(cores)]  # line 38
