"""RL004 fixture: pure cache-key producers — must NOT be flagged."""

import hashlib
import json
import os
import time

from repro.vmin.cache import cache_key_producer


@cache_key_producer
def pure_key(payload) -> str:
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def undecorated_helper(name: str) -> str:
    # Not a key producer: environment and clock reads are allowed.
    return f"{name}/{os.environ.get('HOME', '')}/{time.time()}"
