"""RL009 fixture: a cache key whose callees are pure."""

from repro.vmin.cache import cache_key_producer


@cache_key_producer
def campaign_key(config):
    return (tuple(sorted(config.items())), _token(config))


def _token(config):
    return len(config)
