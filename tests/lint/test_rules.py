"""Fixture tests of every reprolint rule, with exact line/col pins.

Each fixture is linted via ``lint_file(path, module=..., is_test=...)``
— the override API that treats a fixture as if it lived at a chosen
spot in the package — and the findings are compared as exact
``(rule, line, col)`` tuples, so a rule that drifts by one token fails
loudly here.
"""

from __future__ import annotations

from pathlib import Path

from reprolint.engine import lint_file
from reprolint.rules import ALL_RULES
from reprolint.rules.parity import KernelScalarParity

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def lint_fixture(name: str, module: str, is_test: bool = False):
    findings = lint_file(
        FIXTURES / name, ALL_RULES, module=module, is_test=is_test
    )
    return [(f.rule_id, f.line, f.col) for f in findings], findings


class TestRL001Units:
    def test_bad_fixture_exact_positions(self):
        marks, findings = lint_fixture(
            "rl001_bad.py", "repro.experiments.fixture"
        )
        assert marks == [
            ("RL001", 11, 14),  # freq_hz / 1e9 inside the f-string
            ("RL001", 15, 11),  # voltage * 1000
            ("RL001", 19, 11),  # hz_to_ghz(freq_ghz)
            ("RL001", 23, 11),  # mv_to_v(rail_v)
        ]
        assert "hz_to_ghz" in findings[0].message
        assert "v_to_mv" in findings[1].message
        assert "_ghz" in findings[2].message
        assert "_v" in findings[3].message

    def test_good_fixture_clean(self):
        marks, _ = lint_fixture(
            "rl001_good.py", "repro.experiments.fixture"
        )
        assert marks == []

    def test_exempt_module_is_skipped(self):
        marks, _ = lint_fixture("rl001_bad.py", "repro.units")
        assert [m for m in marks if m[0] == "RL001"] == []


class TestRL002Determinism:
    def test_bad_fixture_exact_positions(self):
        marks, _ = lint_fixture("rl002_bad.py", "repro.sim.fixture")
        assert marks == [
            ("RL002", 11, 11),  # random.Random()
            ("RL002", 15, 11),  # np.random.default_rng()
            ("RL002", 19, 11),  # random.uniform(...)
            ("RL002", 23, 11),  # np.random.normal()
            ("RL002", 27, 11),  # time.time()
            ("RL002", 31, 11),  # datetime.now()
            ("RL002", 36, 4),   # for core in {0, 1, 2}
            ("RL002", 38, 23),  # [c for c in set(cores)]
        ]

    def test_good_fixture_clean(self):
        marks, _ = lint_fixture("rl002_good.py", "repro.sim.fixture")
        assert marks == []

    def test_rule_scoped_to_deterministic_modules(self):
        marks, _ = lint_fixture(
            "rl002_bad.py", "repro.analysis.fixture"
        )
        assert marks == []

    def test_rule_exempts_test_code(self):
        marks, _ = lint_fixture(
            "rl002_bad.py", "repro.sim.fixture", is_test=True
        )
        assert marks == []


class TestRL004CachePurity:
    # Linted under a non-deterministic module so RL002 stays out of
    # the picture: RL004 applies to marked functions everywhere.
    def test_bad_fixture_exact_positions(self):
        marks, _ = lint_fixture(
            "rl004_bad.py", "repro.analysis.fixture"
        )
        assert marks == [
            ("RL004", 13, 18),  # os.environ["CACHE_SALT"]
            ("RL004", 18, 19),  # os.getenv("CACHE_SALT")
            ("RL004", 23, 21),  # time.time()
            ("RL004", 28, 4),   # global _COUNTER
        ]

    def test_good_fixture_clean(self):
        marks, _ = lint_fixture(
            "rl004_good.py", "repro.analysis.fixture"
        )
        assert marks == []


class TestRL005Hygiene:
    def test_bad_fixture_exact_positions(self):
        marks, _ = lint_fixture("rl005_bad.py", "repro.sim.fixture")
        assert marks == [
            ("RL005", 7, 0),    # @dataclass without slots
            ("RL005", 12, 0),   # @dataclass(frozen=True) without slots
            ("RL005", 17, 11),  # pfail == 0.0
            ("RL005", 21, 11),  # ratio != 1.0
            ("RL005", 29, 8),   # cancel immediately before schedule
            ("RL005", 34, 12),  # guarded cancel before sibling schedule
        ]

    def test_good_fixture_clean(self):
        marks, _ = lint_fixture("rl005_good.py", "repro.sim.fixture")
        assert marks == []

    def test_slots_rule_scoped_to_hot_modules(self):
        marks, _ = lint_fixture(
            "rl005_bad.py", "repro.experiments.fixture"
        )
        # Outside the hot modules only the float comparisons remain —
        # the slots and cancel/schedule checks are repro.sim-scoped.
        assert marks == [("RL005", 17, 11), ("RL005", 21, 11)]

    def test_float_eq_allowed_in_tests(self):
        marks, _ = lint_fixture(
            "rl005_bad.py", "repro.sim.fixture", is_test=True
        )
        assert marks == []


class TestRL006TelemetryNames:
    def test_bad_call_sites_exact_positions(self):
        marks, findings = lint_fixture(
            "rl006_bad.py", "repro.experiments.fixture"
        )
        assert marks == [
            ("RL006", 8, 18),   # raw string literal
            ("RL006", 9, 18),   # f-string
            ("RL006", 10, 22),  # "queue." + kind
            ("RL006", 11, 29),  # str(depth) keyword name
            ("RL006", 12, 24),  # span(kind) variable
        ]
        assert "raw string literal" in findings[0].message
        assert "f-string" in findings[1].message
        assert "string arithmetic" in findings[2].message
        assert "computed by a call" in findings[3].message
        assert "not a registry constant" in findings[4].message

    def test_good_call_sites_clean(self):
        marks, _ = lint_fixture(
            "rl006_good.py", "repro.experiments.fixture"
        )
        assert marks == []

    def test_call_sites_exempt_in_tests(self):
        marks, _ = lint_fixture(
            "rl006_bad.py", "repro.experiments.fixture", is_test=True
        )
        assert marks == []

    def test_names_module_shape_exact_positions(self):
        marks, findings = lint_fixture(
            "rl006_names_bad.py", "repro.telemetry.names"
        )
        assert marks == [
            ("RL006", 4, 12),  # "SimTicks" not dot.scoped
            ("RL006", 5, 17),  # "replans" single scope
            ("RL006", 6, 17),  # duplicate of SIM_RUNS
            ("RL006", 7, 0),   # non-string constant
        ]
        assert "not dot.scoped" in findings[0].message
        assert "duplicates `SIM_RUNS`" in findings[2].message
        assert "plain string literal" in findings[3].message

    def test_names_module_good_clean(self):
        marks, _ = lint_fixture(
            "rl006_names_good.py", "repro.telemetry.names"
        )
        assert marks == []


class TestRL007PlatformNames:
    def test_bad_fixture_exact_positions(self):
        marks, findings = lint_fixture(
            "rl007_bad.py", "repro.experiments.fixture"
        )
        assert marks == [
            ("RL007", 3, 12),   # module-level chip-name literal
            ("RL007", 7, 7),    # spec.name == "X-Gene 3"
            ("RL007", 13, 11),  # spec.name != "X-Gene 2"
            ("RL007", 17, 11),  # f-string fragment (JoinedStr anchor)
        ]
        assert "registry" in findings[0].message
        assert "dispatch by display name" in findings[1].message
        assert "dispatch by display name" in findings[2].message
        assert "chip display-name literal" in findings[3].message

    def test_good_fixture_clean(self):
        marks, _ = lint_fixture(
            "rl007_good.py", "repro.experiments.fixture"
        )
        assert marks == []

    def test_rule_applies_to_test_code(self):
        # Unlike most rules, tests are NOT exempt: display-name pins in
        # tests are exactly how chip-coupling survives refactors.
        marks, _ = lint_fixture(
            "rl007_bad.py", "test_fixture", is_test=True
        )
        assert [m[0] for m in marks] == ["RL007"] * 4

    def test_platform_package_exempt(self):
        marks, _ = lint_fixture("rl007_bad.py", "repro.platform.specs")
        assert marks == []


class TestRL010ActuationFunnel:
    def test_bad_fixture_exact_positions(self):
        marks, findings = lint_fixture(
            "rl010_bad.py", "repro.experiments.fixture"
        )
        assert marks == [
            ("RL010", 5, 4),    # chip.set_voltage(...)
            ("RL010", 9, 4),    # chip.set_pmd_frequency(...)
            ("RL010", 10, 4),   # chip.cppc.request(...)
            ("RL010", 14, 4),   # chip.set_all_frequencies(...)
            ("RL010", 15, 11),  # chip.cppc.request_all(...)
            ("RL010", 19, 4),   # slimpro.set_voltage_mv(...)
        ]
        assert "apply_action" in findings[0].message
        assert "set_voltage" in findings[0].message

    def test_good_fixture_clean(self):
        marks, _ = lint_fixture(
            "rl010_good.py", "repro.experiments.fixture"
        )
        assert marks == []

    def test_policies_package_not_blanket_exempt(self):
        # Only the funnel module's reasoned suppressions are sanctioned;
        # a governor module calling mutators directly is still flagged.
        marks, _ = lint_fixture(
            "rl010_bad.py", "repro.policies.fixture"
        )
        assert [m[0] for m in marks] == ["RL010"] * 6

    def test_platform_package_exempt(self):
        marks, _ = lint_fixture("rl010_bad.py", "repro.platform.chip")
        assert marks == []

    def test_test_code_exempt(self):
        marks, _ = lint_fixture(
            "rl010_bad.py", "test_fixture", is_test=True
        )
        assert marks == []


class TestSuppressions:
    def test_reasoned_suppression_silences(self):
        marks, _ = lint_fixture(
            "suppression_ok.py", "repro.experiments.fixture"
        )
        assert marks == []

    def test_reasonless_suppression_is_rl000_and_silences_nothing(self):
        marks, _ = lint_fixture(
            "suppression_bad.py", "repro.experiments.fixture"
        )
        assert marks == [("RL000", 5, 0), ("RL001", 5, 10)]


class TestRL003Parity:
    def test_bad_project_exact_positions(self):
        rule = KernelScalarParity()
        findings = sorted(
            rule.check_project(FIXTURES / "rl003_bad"),
            key=lambda f: (f.path, f.line, f.col),
        )
        marks = [
            (Path(f.path).name, f.line, f.col) for f in findings
        ]
        assert marks == [
            ("parity.py", 4, 39),  # dangling kernel value
            ("parity.py", 5, 4),   # stale PARITY key
            ("parity.py", 9, 31),  # empty SCALAR_ONLY reason
            ("model.py", 8, 0),    # unregistered orphan_fn
        ]
        assert "orphan_fn" in findings[3].message
        assert "missing_grid" in findings[0].message

    def test_good_project_clean(self):
        rule = KernelScalarParity()
        assert list(rule.check_project(FIXTURES / "rl003_good")) == []

    def test_missing_registry_is_one_finding(self, tmp_path):
        rule = KernelScalarParity()
        findings = list(rule.check_project(tmp_path))
        assert len(findings) == 1
        assert "registry missing" in findings[0].message


def analyze_fixture(name: str, module: str, is_test: bool = False):
    """Whole-program rules only, over a one-file program."""
    from reprolint.driver import analyze_file
    from reprolint.rules import PROGRAM_RULES

    findings = analyze_file(
        FIXTURES / name,
        (),
        PROGRAM_RULES,
        module=module,
        is_test=is_test,
    )
    return [(f.rule_id, f.line, f.col) for f in findings], findings


class TestRL008UnitFlow:
    def test_bad_fixture_exact_positions(self):
        marks, findings = analyze_fixture(
            "rl008_bad.py", "repro.experiments.fixture"
        )
        assert marks == [
            ("RL008", 20, 27),  # V flows into a *_mv parameter
            ("RL008", 24, 11),  # MHz + Hz
            ("RL008", 27, 0),   # declared mV, returns V
        ]
        # The converter sits two call frames away from the mismatch;
        # the diagnostic must carry the whole inference chain.
        call_flow = findings[0].message
        assert "argument flows V" in call_flow
        assert "`voltage_mv`" in call_flow
        assert "declared mV" in call_flow
        assert "assigned to `rail`" in call_flow
        assert "rail_volts` returns V" in call_flow
        assert "combining MHz with Hz" in findings[1].message
        assert "declared to return mV" in findings[2].message

    def test_good_fixture_clean(self):
        marks, _ = analyze_fixture(
            "rl008_good.py", "repro.experiments.fixture"
        )
        assert marks == []

    def test_rule_exempts_test_code(self):
        marks, _ = analyze_fixture(
            "rl008_bad.py", "repro.experiments.fixture", is_test=True
        )
        assert marks == []

    def test_units_module_itself_is_exempt(self):
        marks, _ = analyze_fixture("rl008_bad.py", "repro.units")
        assert marks == []


class TestRL009EffectPropagation:
    def test_bad_fixture_exact_positions(self):
        marks, findings = analyze_fixture(
            "rl009_bad.py", "repro.experiments.fixture"
        )
        assert marks == [
            ("RL009", 10, 43),  # the call that starts the impure path
        ]
        message = findings[0].message
        assert "cache-key producer" in message
        assert "transitively impure" in message
        assert "`repro.experiments.fixture._token`" in message
        assert "-> `repro.experiments.fixture._now`" in message
        assert "time.time()" in message

    def test_good_fixture_clean(self):
        marks, _ = analyze_fixture(
            "rl009_good.py", "repro.experiments.fixture"
        )
        assert marks == []

    def test_rule_exempts_test_code(self):
        marks, _ = analyze_fixture(
            "rl009_bad.py", "repro.experiments.fixture", is_test=True
        )
        assert marks == []
