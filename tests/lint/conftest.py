"""Make the reprolint implementation importable under pytest.

The real package lives in ``tools/reprolint`` (the repo-root shim only
exists for ``python -m reprolint``); tests import it by putting
``tools/`` on ``sys.path``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS_DIR = REPO_ROOT / "tools"

if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))
