"""Suppression parsing edge cases and per-path rule scoping."""

from __future__ import annotations

import ast
from pathlib import Path

from reprolint.config import (
    KNOWN_RULE_IDS,
    rules_disabled_for,
)
from reprolint.engine import (
    SourceFile,
    parse_suppressions,
    suppression_findings,
)


#: Assembled at runtime so this very file's suppression scan (the
#: repo-clean self-application test) never sees a literal marker.
MARKER = "# repro" + "lint: disable="


def _source(text: str) -> SourceFile:
    return SourceFile(
        path=Path("scratch.py"),
        text=text,
        tree=ast.parse(text),
        module="repro.experiments.scratch",
        is_test=False,
    )


class TestSuppressionParsing:
    def test_reasoned_suppression_parses(self):
        table = parse_suppressions(
            f"x = 1  {MARKER}RL001 -- display-only\n"
        )
        assert table == {1: (frozenset({"RL001"}), "display-only")}

    def test_multiple_rules_one_comment(self):
        table = parse_suppressions(
            f"x = 1  {MARKER}RL001,RL002 -- both safe\n"
        )
        assert table[1][0] == frozenset({"RL001", "RL002"})

    def test_reasonless_suppression_is_rejected(self):
        findings = suppression_findings(
            _source(f"x = 1  {MARKER}RL001\n")
        )
        assert [f.rule_id for f in findings] == ["RL000"]
        assert "without a reason" in findings[0].message

    def test_unknown_rule_id_is_rejected(self):
        findings = suppression_findings(
            _source(f"x = 1  {MARKER}RL999 -- hm\n")
        )
        assert [f.rule_id for f in findings] == ["RL000"]
        assert "unknown rule id" in findings[0].message
        assert "RL999" in findings[0].message

    def test_reasonless_and_unknown_are_both_reported(self):
        findings = suppression_findings(
            _source(f"x = 1  {MARKER}RL998\n")
        )
        assert [f.rule_id for f in findings] == ["RL000", "RL000"]

    def test_known_rule_ids_cover_every_shipped_rule(self):
        from reprolint.rules import RULE_BY_ID

        assert set(RULE_BY_ID) | {"RL000"} == set(KNOWN_RULE_IDS)


class TestPathRuleScoping:
    def test_examples_tree_disables_program_rules(self):
        assert rules_disabled_for("examples/sweep.py") == frozenset(
            {"RL008", "RL009"}
        )

    def test_nested_examples_dir_also_matches(self):
        disabled = rules_disabled_for("docs/examples/sweep.py")
        assert disabled == frozenset({"RL008", "RL009"})

    def test_source_tree_has_no_disabled_rules(self):
        assert rules_disabled_for("src/repro/vmin/model.py") == frozenset()

    def test_windows_separators_are_normalized(self):
        disabled = rules_disabled_for("examples\\sweep.py")
        assert disabled == frozenset({"RL008", "RL009"})
