"""Tests for the server-system simulator."""

import pytest

from repro.errors import SimulationError, SystemCrash
from repro.perf.model import job_duration_s
from repro.platform.chip import Chip
from repro.platform.specs import xgene2_spec
from repro.policies.governors import BaselinePolicy
from repro.policies.surfaces import Action, Policy, PolicyEvent
from repro.sim.system import ServerSystem
from repro.workloads.generator import JobSpec, Workload
from repro.workloads.suites import get_benchmark


def make_workload(jobs, duration=600.0, max_cores=8):
    return Workload(
        jobs=tuple(
            JobSpec(job_id=i, benchmark=name, nthreads=n, start_time_s=t)
            for i, (name, n, t) in enumerate(jobs)
        ),
        duration_s=duration,
        max_cores=max_cores,
        seed=0,
    )


def run_system(jobs, policy=None, chip=None, **kwargs):
    chip = chip or Chip(xgene2_spec())
    system = ServerSystem(
        chip,
        make_workload(jobs),
        policy=policy or BaselinePolicy(),
        **kwargs,
    )
    return system.run(), system


class TestSingleJob:
    def test_runs_to_completion(self):
        result, _ = run_system([("namd", 1, 0.0)])
        proc = result.processes[0]
        assert proc.finish_s is not None
        assert result.makespan_s == proc.finish_s

    def test_duration_matches_analytic_model(self, spec2):
        # Under the baseline the job runs solo at fmax: the DES duration
        # must equal the closed-form model's.
        result, _ = run_system([("namd", 1, 0.0)])
        expected = job_duration_s(
            get_benchmark("namd"), spec2, spec2.fmax_hz
        )
        assert result.makespan_s == pytest.approx(expected, rel=1e-6)

    def test_energy_positive_and_consistent(self):
        result, _ = run_system([("EP", 2, 0.0)])
        assert result.energy_j > 0
        assert result.average_power_w == pytest.approx(
            result.energy_j / result.makespan_s
        )

    def test_ed2p(self):
        result, _ = run_system([("EP", 2, 0.0)])
        assert result.ed2p == pytest.approx(
            result.energy_j * result.makespan_s**2
        )

    def test_arrival_delay_respected(self):
        result, _ = run_system([("namd", 1, 50.0)])
        assert result.processes[0].start_s == pytest.approx(50.0)


class TestMultipleJobs:
    def test_contention_slows_memory_jobs(self, spec2):
        solo, _ = run_system([("CG", 4, 0.0)])
        crowded, _ = run_system([("CG", 4, 0.0), ("milc", 1, 0.0),
                                 ("lbm", 1, 0.0), ("mcf", 1, 0.0)])
        cg_solo = solo.processes[0]
        cg_crowded = crowded.processes[0]
        assert (
            cg_crowded.finish_s - cg_crowded.start_s
            > cg_solo.finish_s - cg_solo.start_s
        )

    def test_all_jobs_complete(self, short_workload2, chip2):
        system = ServerSystem(
            chip2, short_workload2, BaselinePolicy()
        )
        result = system.run()
        assert all(p.finish_s is not None for p in result.processes)

    def test_queueing_when_full(self):
        # 8 single-thread jobs + 1 more than capacity at t=0.
        jobs = [("namd", 1, 0.0)] * 8 + [("EP", 2, 0.0)]
        result, _ = run_system(jobs)
        ep = result.processes[-1]
        assert ep.start_s > 0.0  # had to wait for cores
        assert ep.finish_s is not None

    def test_makespan_covers_all(self, short_workload2, chip2):
        result = ServerSystem(
            chip2, short_workload2, BaselinePolicy()
        ).run()
        assert result.makespan_s == max(
            p.finish_s for p in result.processes
        )


class TestTraces:
    def test_trace_sampled_every_second(self):
        result, _ = run_system([("EP", 4, 0.0)])
        trace = result.trace
        assert trace is not None
        assert len(trace.samples) >= int(result.makespan_s)

    def test_trace_disabled(self):
        chip = Chip(xgene2_spec())
        system = ServerSystem(
            chip,
            make_workload([("EP", 2, 0.0)]),
            BaselinePolicy(),
            trace_period_s=None,
        )
        assert system.run().trace is None

    def test_trace_shows_busy_cores(self):
        result, _ = run_system([("EP", 4, 1.0)])
        busy = [s.busy_cores for s in result.trace.samples]
        assert 0 in busy  # before arrival
        assert 4 in busy  # while running


class TestPmuAccounting:
    def test_process_counters_advance(self):
        result, _ = run_system([("CG", 2, 0.0)])
        proc = result.processes[0]
        assert proc.counters.cycles > 0
        assert proc.counters.l3_accesses > 0

    def test_l3_rate_near_profile(self, spec2):
        # The per-process PMU rate is what the daemon classifies from.
        result, _ = run_system([("CG", 2, 0.0)])
        proc = result.processes[0]
        rate = 1e6 * proc.counters.l3_accesses / proc.counters.cycles
        assert rate > 3000  # CG is memory-intensive

    def test_droop_events_recorded(self):
        _, system = run_system([("CG", 8, 0.0)])
        assert sum(system.chip.pmu.droop_events.values()) > 0


class _RecklessPolicy(BaselinePolicy):
    """Baseline that settles the rail far below any safe Vmin at start."""

    def decide(self, obs):
        action = super().decide(obs)
        if obs.event is PolicyEvent.START:
            action.voltage_mv = 700
        return action


class TestVoltageAudit:
    def test_baseline_never_violates(self, short_workload2, chip2):
        result = ServerSystem(
            chip2, short_workload2, BaselinePolicy()
        ).run()
        assert result.violations == []

    def test_undervolted_chip_detected(self):
        result, _ = run_system(
            [("namd", 8, 0.0)], policy=_RecklessPolicy()
        )
        assert result.violations
        assert result.violations[0].depth_mv > 0

    def test_raise_policy_crashes(self):
        chip = Chip(xgene2_spec())
        system = ServerSystem(
            chip,
            make_workload([("namd", 8, 0.0)]),
            _RecklessPolicy(),
            fault_policy="raise",
        )
        with pytest.raises(SystemCrash):
            system.run()

    def test_off_policy_ignores(self):
        result, _ = run_system(
            [("namd", 8, 0.0)],
            policy=_RecklessPolicy(),
            fault_policy="off",
        )
        assert result.violations == []

    def test_unknown_policy_rejected(self, chip2, short_workload2):
        with pytest.raises(SimulationError):
            ServerSystem(
                chip2,
                short_workload2,
                BaselinePolicy(),
                fault_policy="maybe",
            )


class TestMigrationApi:
    def test_migrate_many_swaps(self):
        class Swapper(BaselinePolicy):
            def decide(self, obs):
                action = super().decide(obs)
                if obs.event is not PolicyEvent.STARTED:
                    return action
                running = obs.running_processes()
                if len(running) == 2:
                    a, b = running
                    action.migrations = {
                        a.pid: tuple(b.cores),
                        b.pid: tuple(a.cores),
                    }
                return action

        result, _ = run_system(
            [("namd", 2, 0.0), ("EP", 2, 0.0)], policy=Swapper()
        )
        assert all(p.finish_s is not None for p in result.processes)
        assert result.total_migrations == 2

    def test_migrate_to_busy_core_rejected(self):
        class Bad(BaselinePolicy):
            def decide(self, obs):
                action = super().decide(obs)
                if obs.event is not PolicyEvent.STARTED:
                    return action
                running = obs.running_processes()
                if len(running) == 2:
                    a, b = running
                    # One-sided move onto b's busy cores: not a swap.
                    obs.system.migrate(a, b.cores)
                return action

        with pytest.raises(SimulationError):
            run_system(
                [("namd", 2, 0.0), ("EP", 2, 0.0)], policy=Bad()
            )


class TestAdmitCores:
    def test_admit_cores_honoured(self):
        class Pinner(Policy):
            def __init__(self):
                self.placed_on = None

            def decide(self, obs):
                if obs.event is PolicyEvent.ADMIT:
                    return Action(admit_cores=(5,))
                if obs.event is PolicyEvent.STARTED:
                    self.placed_on = tuple(obs.process.cores)
                return None

        policy = Pinner()
        result, _ = run_system([("namd", 1, 0.0)], policy=policy)
        assert policy.placed_on == (5,)
        assert result.processes[0].finish_s is not None


class TestTicks:
    def test_ticks_delivered_while_running(self):
        class Ticker(Policy):
            monitor_period_s = 1.0

            def __init__(self):
                self.ticks = 0

            def decide(self, obs):
                if obs.event is PolicyEvent.TICK:
                    self.ticks += 1
                return None

        policy = Ticker()
        result, _ = run_system([("namd", 1, 0.0)], policy=policy)
        # namd solo at fmax runs ~150 s on X-Gene 2.
        assert policy.ticks >= int(result.makespan_s) - 2

    def test_ticks_stop_after_work_done(self):
        class Ticker(Policy):
            monitor_period_s = 1.0

        result, system = run_system(
            [("EP", 8, 0.0)], policy=Ticker()
        )
        # Simulation terminates (run() returned) and time does not run
        # far past the last completion.
        assert system.now <= result.makespan_s + 2.0
