"""Tests for the server-system simulator."""

import pytest

from repro.errors import SimulationError, SystemCrash
from repro.perf.model import job_duration_s
from repro.platform.chip import Chip
from repro.platform.specs import xgene2_spec
from repro.sim.controllers import BaselineController
from repro.sim.system import Controller, ServerSystem
from repro.workloads.generator import JobSpec, Workload
from repro.workloads.suites import get_benchmark


def make_workload(jobs, duration=600.0, max_cores=8):
    return Workload(
        jobs=tuple(
            JobSpec(job_id=i, benchmark=name, nthreads=n, start_time_s=t)
            for i, (name, n, t) in enumerate(jobs)
        ),
        duration_s=duration,
        max_cores=max_cores,
        seed=0,
    )


def run_system(jobs, controller=None, chip=None, **kwargs):
    chip = chip or Chip(xgene2_spec())
    system = ServerSystem(
        chip,
        make_workload(jobs),
        controller=controller or BaselineController(),
        **kwargs,
    )
    return system.run(), system


class TestSingleJob:
    def test_runs_to_completion(self):
        result, _ = run_system([("namd", 1, 0.0)])
        proc = result.processes[0]
        assert proc.finish_s is not None
        assert result.makespan_s == proc.finish_s

    def test_duration_matches_analytic_model(self, spec2):
        # Under the baseline the job runs solo at fmax: the DES duration
        # must equal the closed-form model's.
        result, _ = run_system([("namd", 1, 0.0)])
        expected = job_duration_s(
            get_benchmark("namd"), spec2, spec2.fmax_hz
        )
        assert result.makespan_s == pytest.approx(expected, rel=1e-6)

    def test_energy_positive_and_consistent(self):
        result, _ = run_system([("EP", 2, 0.0)])
        assert result.energy_j > 0
        assert result.average_power_w == pytest.approx(
            result.energy_j / result.makespan_s
        )

    def test_ed2p(self):
        result, _ = run_system([("EP", 2, 0.0)])
        assert result.ed2p == pytest.approx(
            result.energy_j * result.makespan_s**2
        )

    def test_arrival_delay_respected(self):
        result, _ = run_system([("namd", 1, 50.0)])
        assert result.processes[0].start_s == pytest.approx(50.0)


class TestMultipleJobs:
    def test_contention_slows_memory_jobs(self, spec2):
        solo, _ = run_system([("CG", 4, 0.0)])
        crowded, _ = run_system([("CG", 4, 0.0), ("milc", 1, 0.0),
                                 ("lbm", 1, 0.0), ("mcf", 1, 0.0)])
        cg_solo = solo.processes[0]
        cg_crowded = crowded.processes[0]
        assert (
            cg_crowded.finish_s - cg_crowded.start_s
            > cg_solo.finish_s - cg_solo.start_s
        )

    def test_all_jobs_complete(self, short_workload2, chip2):
        system = ServerSystem(
            chip2, short_workload2, BaselineController()
        )
        result = system.run()
        assert all(p.finish_s is not None for p in result.processes)

    def test_queueing_when_full(self):
        # 8 single-thread jobs + 1 more than capacity at t=0.
        jobs = [("namd", 1, 0.0)] * 8 + [("EP", 2, 0.0)]
        result, _ = run_system(jobs)
        ep = result.processes[-1]
        assert ep.start_s > 0.0  # had to wait for cores
        assert ep.finish_s is not None

    def test_makespan_covers_all(self, short_workload2, chip2):
        result = ServerSystem(
            chip2, short_workload2, BaselineController()
        ).run()
        assert result.makespan_s == max(
            p.finish_s for p in result.processes
        )


class TestTraces:
    def test_trace_sampled_every_second(self):
        result, _ = run_system([("EP", 4, 0.0)])
        trace = result.trace
        assert trace is not None
        assert len(trace.samples) >= int(result.makespan_s)

    def test_trace_disabled(self):
        chip = Chip(xgene2_spec())
        system = ServerSystem(
            chip,
            make_workload([("EP", 2, 0.0)]),
            BaselineController(),
            trace_period_s=None,
        )
        assert system.run().trace is None

    def test_trace_shows_busy_cores(self):
        result, _ = run_system([("EP", 4, 1.0)])
        busy = [s.busy_cores for s in result.trace.samples]
        assert 0 in busy  # before arrival
        assert 4 in busy  # while running


class TestPmuAccounting:
    def test_process_counters_advance(self):
        result, _ = run_system([("CG", 2, 0.0)])
        proc = result.processes[0]
        assert proc.counters.cycles > 0
        assert proc.counters.l3_accesses > 0

    def test_l3_rate_near_profile(self, spec2):
        # The per-process PMU rate is what the daemon classifies from.
        result, _ = run_system([("CG", 2, 0.0)])
        proc = result.processes[0]
        rate = 1e6 * proc.counters.l3_accesses / proc.counters.cycles
        assert rate > 3000  # CG is memory-intensive

    def test_droop_events_recorded(self):
        _, system = run_system([("CG", 8, 0.0)])
        assert sum(system.chip.pmu.droop_events.values()) > 0


class TestVoltageAudit:
    def test_baseline_never_violates(self, short_workload2, chip2):
        result = ServerSystem(
            chip2, short_workload2, BaselineController()
        ).run()
        assert result.violations == []

    def test_undervolted_chip_detected(self):
        class Reckless(BaselineController):
            def on_start(self):
                super().on_start()
                self.system.set_voltage(700)  # far below any safe Vmin

        result, _ = run_system([("namd", 8, 0.0)], controller=Reckless())
        assert result.violations
        assert result.violations[0].depth_mv > 0

    def test_raise_policy_crashes(self):
        class Reckless(BaselineController):
            def on_start(self):
                super().on_start()
                self.system.set_voltage(700)

        chip = Chip(xgene2_spec())
        system = ServerSystem(
            chip,
            make_workload([("namd", 8, 0.0)]),
            Reckless(),
            fault_policy="raise",
        )
        with pytest.raises(SystemCrash):
            system.run()

    def test_off_policy_ignores(self):
        class Reckless(BaselineController):
            def on_start(self):
                super().on_start()
                self.system.set_voltage(700)

        result, _ = run_system(
            [("namd", 8, 0.0)],
            controller=Reckless(),
            fault_policy="off",
        )
        assert result.violations == []

    def test_unknown_policy_rejected(self, chip2, short_workload2):
        with pytest.raises(SimulationError):
            ServerSystem(
                chip2,
                short_workload2,
                BaselineController(),
                fault_policy="maybe",
            )


class TestMigrationApi:
    def test_migrate_many_swaps(self):
        class Swapper(BaselineController):
            def on_process_started(self, process):
                super().on_process_started(process)
                running = self.system.running_processes()
                if len(running) == 2:
                    a, b = running
                    self.system.migrate_many(
                        {a: tuple(b.cores), b: tuple(a.cores)}
                    )

        result, _ = run_system(
            [("namd", 2, 0.0), ("EP", 2, 0.0)], controller=Swapper()
        )
        assert all(p.finish_s is not None for p in result.processes)
        assert result.total_migrations == 2

    def test_migrate_to_busy_core_rejected(self):
        class Bad(BaselineController):
            def on_process_started(self, process):
                super().on_process_started(process)
                running = self.system.running_processes()
                if len(running) == 2:
                    a, b = running
                    self.system.migrate(a, b.cores)

        with pytest.raises(SimulationError):
            run_system(
                [("namd", 2, 0.0), ("EP", 2, 0.0)], controller=Bad()
            )


class TestTicks:
    def test_ticks_delivered_while_running(self):
        class Ticker(Controller):
            monitor_period_s = 1.0

            def __init__(self):
                super().__init__()
                self.ticks = 0

            def on_tick(self):
                self.ticks += 1

        controller = Ticker()
        result, _ = run_system([("namd", 1, 0.0)], controller=controller)
        # namd solo at fmax runs ~150 s on X-Gene 2.
        assert controller.ticks >= int(result.makespan_s) - 2

    def test_ticks_stop_after_work_done(self):
        class Ticker(Controller):
            monitor_period_s = 1.0

        result, system = run_system(
            [("EP", 8, 0.0)], controller=Ticker()
        )
        # Simulation terminates (run() returned) and time does not run
        # far past the last completion.
        assert system.now <= result.makespan_s + 2.0
