"""Tests for the process lifecycle model."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import ProcessState, SimProcess, WorkloadClass
from repro.workloads.suites import get_benchmark


@pytest.fixture
def proc():
    return SimProcess(
        pid=1, profile=get_benchmark("CG"), nthreads=4, arrival_s=10.0
    )


class TestLifecycle:
    def test_starts_queued(self, proc):
        assert proc.state is ProcessState.QUEUED
        assert not proc.is_running

    def test_start(self, proc):
        proc.start(12.0, (0, 1, 2, 3))
        assert proc.is_running
        assert proc.start_s == 12.0
        assert proc.cores == (0, 1, 2, 3)

    def test_start_needs_matching_cores(self, proc):
        with pytest.raises(SimulationError):
            proc.start(12.0, (0, 1))

    def test_double_start_rejected(self, proc):
        proc.start(12.0, (0, 1, 2, 3))
        with pytest.raises(SimulationError):
            proc.start(13.0, (0, 1, 2, 3))

    def test_finish(self, proc):
        proc.start(12.0, (0, 1, 2, 3))
        proc.finish(50.0)
        assert proc.state is ProcessState.DONE
        assert proc.cores == ()
        assert proc.remaining_fraction == 0.0
        assert proc.turnaround_s() == 40.0

    def test_finish_before_start_rejected(self, proc):
        with pytest.raises(SimulationError):
            proc.finish(20.0)

    def test_turnaround_needs_finish(self, proc):
        with pytest.raises(SimulationError):
            proc.turnaround_s()


class TestMigration:
    def test_migrate_counts(self, proc):
        proc.start(12.0, (0, 1, 2, 3))
        proc.migrate((4, 5, 6, 7))
        assert proc.cores == (4, 5, 6, 7)
        assert proc.migrations == 1

    def test_same_cores_not_counted(self, proc):
        proc.start(12.0, (0, 1, 2, 3))
        proc.migrate((0, 1, 2, 3))
        assert proc.migrations == 0

    def test_migrate_requires_running(self, proc):
        with pytest.raises(SimulationError):
            proc.migrate((0, 1, 2, 3))

    def test_migrate_core_count_checked(self, proc):
        proc.start(12.0, (0, 1, 2, 3))
        with pytest.raises(SimulationError):
            proc.migrate((0, 1))


class TestProgress:
    def test_progress_consumes_work(self, proc):
        proc.progress(0.3)
        assert proc.remaining_fraction == pytest.approx(0.7)

    def test_progress_clamps_at_zero(self, proc):
        proc.progress(1.5)
        assert proc.remaining_fraction == 0.0

    def test_negative_progress_rejected(self, proc):
        with pytest.raises(SimulationError):
            proc.progress(-0.1)


class TestCountersAndClass:
    def test_counters_accumulate(self, proc):
        proc.counters.advance(1e6, 4e3)
        proc.counters.advance(1e6, 2e3)
        assert proc.counters.cycles == 2e6
        assert proc.counters.l3_accesses == 6e3

    def test_counter_deltas_validated(self, proc):
        with pytest.raises(SimulationError):
            proc.counters.advance(-1, 0)

    def test_reference_class_memory(self, proc):
        assert proc.reference_class is WorkloadClass.MEMORY_INTENSIVE

    def test_reference_class_cpu(self):
        proc = SimProcess(
            pid=2,
            profile=get_benchmark("namd"),
            nthreads=1,
            arrival_s=0.0,
        )
        assert proc.reference_class is WorkloadClass.CPU_INTENSIVE

    def test_observed_class_starts_unknown(self, proc):
        assert proc.observed_class is WorkloadClass.UNKNOWN

    def test_identity_hashing(self, proc):
        other = SimProcess(
            pid=1, profile=proc.profile, nthreads=4, arrival_s=10.0
        )
        assert proc != other
        assert len({proc, other}) == 2
