"""Tests for phased-benchmark execution in the simulator.

The paper's case (b): a process changes state between CPU- and
memory-intensive; the daemon retunes V/F in place without migrations.
"""


from repro.policies.daemon import OnlineMonitoringDaemon
from repro.platform.chip import Chip
from repro.platform.specs import xgene2_spec
from repro.policies.governors import BaselinePolicy
from repro.sim.process import WorkloadClass
from repro.sim.system import ServerSystem
from repro.workloads.generator import JobSpec, Workload


def workload_of(*jobs):
    return Workload(
        jobs=tuple(
            JobSpec(job_id=i, benchmark=name, nthreads=n, start_time_s=t)
            for i, (name, n, t) in enumerate(jobs)
        ),
        duration_s=600.0,
        max_cores=8,
        seed=0,
    )


class TestPhasedExecution:
    def test_phased_job_completes(self):
        chip = Chip(xgene2_spec())
        system = ServerSystem(
            chip,
            workload_of(("setup-then-crunch", 1, 0.0)),
            BaselinePolicy(),
        )
        result = system.run()
        assert result.processes[0].finish_s is not None

    def test_duration_between_pure_extremes(self):
        # The phased job must take longer than its faster phase run
        # standalone and less than its slower one (at equal work).
        spec = xgene2_spec()

        def run(name):
            system = ServerSystem(
                Chip(spec), workload_of((name, 1, 0.0)),
                BaselinePolicy(),
            )
            return system.run().makespan_s

        phased = run("setup-then-crunch")  # 30% mcf + 70% gamess
        mcf, gamess = run("mcf"), run("gamess")
        lo, hi = sorted((mcf, gamess))
        assert lo < phased < hi

    def test_pmu_rate_shifts_across_phases(self):
        # During the mcf phase the L3 rate is high; during gamess, low.
        chip = Chip(xgene2_spec())
        system = ServerSystem(
            chip,
            workload_of(("setup-then-crunch", 1, 0.0)),
            BaselinePolicy(),
        )
        proc = system.processes[0]
        samples = []

        original = system._refresh

        def spy():
            original()
            if proc.is_running:
                samples.append(
                    (proc.done_fraction, proc.current_profile().name)
                )

        system._refresh = spy
        system.run()
        names = {name for _, name in samples}
        assert names == {"mcf", "gamess"}

    def test_daemon_reclassifies_on_phase_change(self):
        spec = xgene2_spec()
        chip = Chip(spec)
        daemon = OnlineMonitoringDaemon(spec)
        system = ServerSystem(
            chip, workload_of(("setup-then-crunch", 1, 0.0)), daemon
        )
        result = system.run()
        proc = result.processes[0]
        # The last observed class is the final (CPU-intensive) phase.
        assert proc.observed_class is WorkloadClass.CPU_INTENSIVE
        # And the daemon retuned at least twice: unknown->memory at the
        # start, memory->cpu at the phase boundary.
        assert daemon.retunes >= 2

    def test_daemon_raises_clock_after_memory_phase(self):
        # When the process turns CPU-intensive, its PMD must return to
        # fmax (the paper's performance constraint).
        spec = xgene2_spec()
        chip = Chip(spec)
        daemon = OnlineMonitoringDaemon(spec)
        system = ServerSystem(
            chip, workload_of(("setup-then-crunch", 1, 0.0)), daemon
        )
        system.run()
        ups = [
            t
            for t in chip.cppc.transitions
            if t.to_hz == spec.fmax_hz and t.from_hz < spec.fmax_hz
        ]
        assert ups  # the retune back to full clock happened

    def test_no_migration_on_phase_change(self):
        # Case (b): utilized PMDs cannot change on a classification
        # change; a lone phased process must never migrate.
        spec = xgene2_spec()
        chip = Chip(spec)
        daemon = OnlineMonitoringDaemon(spec)
        system = ServerSystem(
            chip, workload_of(("stream-compute", 1, 0.0)), daemon
        )
        result = system.run()
        assert result.processes[0].migrations == 0

    def test_sawtooth_hysteresis_limits_flapping(self):
        spec = xgene2_spec()
        chip = Chip(spec)
        daemon = OnlineMonitoringDaemon(spec)
        system = ServerSystem(
            chip, workload_of(("sawtooth", 2, 0.0)), daemon
        )
        system.run()
        # 8 phases -> at most one retune per boundary plus the initial
        # classification; hysteresis and the 1M-cycle window must keep
        # the count near that, not orders beyond.
        assert daemon.retunes <= 12

    def test_no_violations_with_phases(self):
        spec = xgene2_spec()
        chip = Chip(spec)
        daemon = OnlineMonitoringDaemon(spec)
        system = ServerSystem(
            chip,
            workload_of(
                ("sawtooth", 2, 0.0),
                ("compute-then-writeback", 1, 5.0),
                ("namd", 1, 10.0),
            ),
            daemon,
        )
        result = system.run()
        assert result.violations == []
        assert all(p.finish_s is not None for p in result.processes)
