"""Tests for time-series tracing (paper Figs. 14/15)."""

import pytest

from repro.errors import SimulationError
from repro.sim.tracing import TimelineTrace, TraceSample, moving_average


def sample(t, power=10.0, busy=4, cpu=1, mem=1):
    return TraceSample(
        time_s=t,
        power_w=power,
        busy_cores=busy,
        running_processes=cpu + mem,
        cpu_intensive=cpu,
        memory_intensive=mem,
        voltage_mv=870,
        mean_active_freq_hz=3e9,
    )


class TestTimelineTrace:
    def test_append_and_series(self):
        trace = TimelineTrace()
        trace.append(sample(0.0, power=10.0))
        trace.append(sample(1.0, power=20.0))
        assert trace.power_series() == [10.0, 20.0]
        assert trace.times() == [0.0, 1.0]
        assert trace.load_series() == [4, 4]

    def test_time_ordering_enforced(self):
        trace = TimelineTrace()
        trace.append(sample(5.0))
        with pytest.raises(SimulationError):
            trace.append(sample(4.0))

    def test_equal_time_samples_are_legal(self):
        # Regression: the docstring promises *non-decreasing* times, so
        # two samples at the same instant (e.g. a controller-forced
        # sample coinciding with the periodic one) must be accepted.
        trace = TimelineTrace()
        trace.append(sample(1.0, power=10.0))
        trace.append(sample(1.0, power=12.0))
        assert trace.times() == [1.0, 1.0]
        assert trace.power_series() == [10.0, 12.0]

    def test_nan_time_rejected(self):
        trace = TimelineTrace()
        trace.append(sample(0.0))
        with pytest.raises(SimulationError):
            trace.append(sample(float("nan")))

    def test_nan_time_rejected_on_empty_trace(self):
        trace = TimelineTrace()
        with pytest.raises(SimulationError):
            trace.append(sample(float("nan")))

    def test_average_and_peak_power(self):
        trace = TimelineTrace()
        for t, p in enumerate((10.0, 30.0, 20.0)):
            trace.append(sample(float(t), power=p))
        assert trace.average_power_w() == pytest.approx(20.0)
        assert trace.peak_power_w() == 30.0

    def test_empty_trace_stats(self):
        trace = TimelineTrace()
        assert trace.average_power_w() == 0.0
        assert trace.peak_power_w() == 0.0

    def test_class_series(self):
        trace = TimelineTrace()
        trace.append(sample(0.0, cpu=3, mem=2))
        assert trace.class_series() == [(3, 2)]

    def test_bad_period(self):
        with pytest.raises(SimulationError):
            TimelineTrace(period_s=0)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        assert moving_average([1.0, 2.0, 3.0], 1) == [1.0, 2.0, 3.0]

    def test_trailing_window(self):
        result = moving_average([2.0, 4.0, 6.0, 8.0], 2)
        assert result == [2.0, 3.0, 5.0, 7.0]

    def test_warmup_uses_available(self):
        result = moving_average([4.0, 8.0], 60)
        assert result == [4.0, 6.0]

    def test_bad_window(self):
        with pytest.raises(SimulationError):
            moving_average([1.0], 0)

    def test_constant_series_unchanged(self):
        assert moving_average([5.0] * 10, 3) == [5.0] * 10
