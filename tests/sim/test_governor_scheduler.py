"""Tests for the governors and the default scheduler."""

import pytest

from repro.allocation import utilized_pmds
from repro.sim.governor import (
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.sim.scheduler import ClusterScheduler, SpreadScheduler


class TestOndemandChipScope:
    def test_idle_chip_parks_all(self, chip2, spec2):
        OndemandGovernor().apply(chip2)
        assert chip2.cppc.frequencies() == (spec2.fmin_hz,) * 4

    def test_any_busy_core_raises_all(self, chip2, spec2):
        chip2.occupy(5, "p")
        OndemandGovernor().apply(chip2)
        assert chip2.cppc.frequencies() == (spec2.fmax_hz,) * 4

    def test_returns_to_floor_after_release(self, chip2, spec2):
        governor = OndemandGovernor()
        chip2.occupy(5, "p")
        governor.apply(chip2)
        chip2.release(5)
        governor.apply(chip2)
        assert chip2.cppc.frequencies() == (spec2.fmin_hz,) * 4


class TestOndemandPmdScope:
    def test_only_busy_pmds_raised(self, chip2, spec2):
        chip2.occupy(0, "p")
        OndemandGovernor(scope="pmd").apply(chip2)
        freqs = chip2.cppc.frequencies()
        assert freqs[0] == spec2.fmax_hz
        assert freqs[1:] == (spec2.fmin_hz,) * 3

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError):
            OndemandGovernor(scope="socket")


class TestPinnedGovernors:
    def test_performance(self, chip2, spec2):
        chip2.set_all_frequencies(spec2.fmin_hz)
        PerformanceGovernor().apply(chip2)
        assert chip2.cppc.frequencies() == (spec2.fmax_hz,) * 4

    def test_powersave(self, chip2, spec2):
        PowersaveGovernor().apply(chip2)
        assert chip2.cppc.frequencies() == (spec2.fmin_hz,) * 4


class TestSpreadScheduler:
    def test_spreads_across_pmds(self, chip2, spec2):
        cores = SpreadScheduler().select_cores(chip2, 4)
        assert len(utilized_pmds(spec2, cores)) == 4

    def test_respects_occupancy(self, chip2):
        chip2.occupy(0, "p")
        chip2.occupy(2, "p")
        cores = SpreadScheduler().select_cores(chip2, 2)
        assert set(cores).isdisjoint({0, 2})

    def test_none_when_insufficient(self, chip2):
        for core in range(7):
            chip2.occupy(core, "p")
        assert SpreadScheduler().select_cores(chip2, 2) is None

    def test_exactly_fits(self, chip2):
        cores = SpreadScheduler().select_cores(chip2, 8)
        assert sorted(cores) == list(range(8))


class TestClusterScheduler:
    def test_packs_pmds(self, chip2, spec2):
        cores = ClusterScheduler().select_cores(chip2, 4)
        assert len(utilized_pmds(spec2, cores)) == 2

    def test_none_when_insufficient(self, chip2):
        for core in range(8):
            chip2.occupy(core, "p")
        assert ClusterScheduler().select_cores(chip2, 1) is None
