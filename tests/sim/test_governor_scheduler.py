"""Tests for the governor policies and the default scheduler."""

import pytest

from repro.allocation import utilized_pmds
from repro.errors import ConfigurationError
from repro.policies.actuation import apply_action
from repro.policies.governors import (
    OndemandPolicy,
    PerformancePolicy,
    PowersavePolicy,
)
from repro.policies.surfaces import Observation, PolicyEvent
from repro.sim.scheduler import ClusterScheduler, SpreadScheduler


class _BareSystem:
    """The minimal system surface a governor observation touches."""

    def __init__(self, chip):
        self.chip = chip
        self.spec = chip.spec
        self.now = 0.0

    def running_processes(self):
        return []


def govern(chip, policy, event=PolicyEvent.STARTED):
    """Dispatch one event to ``policy`` and actuate its action."""
    system = _BareSystem(chip)
    action = policy.decide(Observation(system, event))
    if action is not None:
        apply_action(system, action)
    return action


class TestOndemandChipScope:
    def test_idle_chip_parks_all(self, chip2, spec2):
        govern(chip2, OndemandPolicy())
        assert chip2.cppc.frequencies() == (spec2.fmin_hz,) * 4

    def test_any_busy_core_raises_all(self, chip2, spec2):
        chip2.occupy(5, "p")
        govern(chip2, OndemandPolicy())
        assert chip2.cppc.frequencies() == (spec2.fmax_hz,) * 4

    def test_returns_to_floor_after_release(self, chip2, spec2):
        policy = OndemandPolicy()
        chip2.occupy(5, "p")
        govern(chip2, policy)
        chip2.release(5)
        govern(chip2, policy)
        assert chip2.cppc.frequencies() == (spec2.fmin_hz,) * 4

    def test_no_action_on_admit_or_tick(self, chip2):
        policy = OndemandPolicy()
        assert govern(chip2, policy, PolicyEvent.ADMIT) is None
        assert govern(chip2, policy, PolicyEvent.TICK) is None


class TestOndemandPmdScope:
    def test_only_busy_pmds_raised(self, chip2, spec2):
        chip2.occupy(0, "p")
        govern(chip2, OndemandPolicy(scope="pmd"))
        freqs = chip2.cppc.frequencies()
        assert freqs[0] == spec2.fmax_hz
        assert freqs[1:] == (spec2.fmin_hz,) * 3

    def test_unknown_scope_rejected(self):
        with pytest.raises(ConfigurationError):
            OndemandPolicy(scope="socket")


class TestPinnedGovernors:
    def test_performance(self, chip2, spec2):
        chip2.set_all_frequencies(spec2.fmin_hz)
        govern(chip2, PerformancePolicy())
        assert chip2.cppc.frequencies() == (spec2.fmax_hz,) * 4

    def test_powersave(self, chip2, spec2):
        govern(chip2, PowersavePolicy())
        assert chip2.cppc.frequencies() == (spec2.fmin_hz,) * 4


class TestSpreadScheduler:
    def test_spreads_across_pmds(self, chip2, spec2):
        cores = SpreadScheduler().select_cores(chip2, 4)
        assert len(utilized_pmds(spec2, cores)) == 4

    def test_respects_occupancy(self, chip2):
        chip2.occupy(0, "p")
        chip2.occupy(2, "p")
        cores = SpreadScheduler().select_cores(chip2, 2)
        assert set(cores).isdisjoint({0, 2})

    def test_none_when_insufficient(self, chip2):
        for core in range(7):
            chip2.occupy(core, "p")
        assert SpreadScheduler().select_cores(chip2, 2) is None

    def test_exactly_fits(self, chip2):
        cores = SpreadScheduler().select_cores(chip2, 8)
        assert sorted(cores) == list(range(8))


class TestClusterScheduler:
    def test_packs_pmds(self, chip2, spec2):
        cores = ClusterScheduler().select_cores(chip2, 4)
        assert len(utilized_pmds(spec2, cores)) == 2

    def test_none_when_insufficient(self, chip2):
        for core in range(8):
            chip2.occupy(core, "p")
        assert ClusterScheduler().select_cores(chip2, 1) is None
