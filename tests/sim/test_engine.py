"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventQueue, SimClock


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.schedule(5.0, "b")
        queue.schedule(1.0, "a")
        queue.schedule(3.0, "c")
        kinds = [queue.pop().kind for _ in range(3)]
        assert kinds == ["a", "c", "b"]

    def test_fifo_tie_break(self):
        queue = EventQueue()
        queue.schedule(1.0, "first")
        queue.schedule(1.0, "second")
        assert queue.pop().kind == "first"
        assert queue.pop().kind == "second"

    def test_cancel(self):
        queue = EventQueue()
        keep = queue.schedule(1.0, "keep")
        drop = queue.schedule(0.5, "drop")
        queue.cancel(drop)
        assert len(queue) == 1
        assert queue.pop().seq == keep.seq

    def test_cancel_after_pop_is_noop(self):
        queue = EventQueue()
        event = queue.schedule(1.0, "x")
        assert queue.pop().seq == event.seq
        queue.cancel(event)
        assert len(queue) == 0

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(2.0, "x")
        assert queue.peek_time() == 2.0

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        early = queue.schedule(1.0, "early")
        queue.schedule(2.0, "late")
        queue.cancel(early)
        assert queue.peek_time() == 2.0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1.0, "x")

    def test_payload_carried(self):
        queue = EventQueue()
        queue.schedule(1.0, "x", payload={"pid": 3})
        assert queue.pop().payload == {"pid": 3}

    def test_bool_and_len(self):
        queue = EventQueue()
        assert not queue
        event = queue.schedule(1.0, "x")
        assert queue and len(queue) == 1
        queue.cancel(event)
        assert not queue

    def test_cancelled_set_drains_when_queue_logically_empty(self):
        # Regression: cancelled events buried below the heap top used to
        # linger in _cancelled (and _heap) forever once the queue was
        # logically empty, growing without bound on a reused queue.
        queue = EventQueue()
        for round_no in range(50):
            live = queue.schedule(1.0, "live")
            buried = queue.schedule(2.0 + round_no, "buried")
            queue.cancel(buried)
            assert queue.pop().seq == live.seq
            assert not queue
            queue.peek_time()  # any lazy-deletion entry point
            assert not queue._cancelled
            assert not queue._heap

    def test_cancelled_set_bounded_with_live_backlog(self):
        # Out-of-order cancellations with a live event pinned at the heap
        # top must not accumulate corpses past the compaction threshold.
        queue = EventQueue()
        queue.schedule(0.0, "pinned")
        cancelled = [
            queue.schedule(10.0 + i, f"bulk{i}") for i in range(500)
        ]
        for event in cancelled:
            queue.cancel(event)
        assert len(queue) == 1
        queue.peek_time()
        assert len(queue._cancelled) <= 128
        assert queue.pop().kind == "pinned"
        assert not queue._cancelled and not queue._heap

    def test_pop_order_survives_compaction(self):
        queue = EventQueue()
        keep = [queue.schedule(float(i), f"k{i}") for i in range(5)]
        victims = [queue.schedule(100.0 + i, "v") for i in range(300)]
        for event in victims:
            queue.cancel(event)
        queue.peek_time()
        assert [queue.pop().seq for _ in range(5)] == [
            e.seq for e in keep
        ]
        assert not queue


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_returns_delta(self):
        clock = SimClock()
        assert clock.advance_to(2.5) == 2.5
        assert clock.advance_to(4.0) == 1.5
        assert clock.now == 4.0

    def test_no_backwards(self):
        clock = SimClock()
        clock.advance_to(5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)

    def test_tiny_backwards_tolerated(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.advance_to(5.0 - 1e-12) == 0.0
        assert clock.now == 5.0
