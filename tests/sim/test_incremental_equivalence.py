"""Incremental-refresh equivalence: fast path ≡ full-refresh oracle.

The simulator's incremental hot path (dirty-set refresh, execution-state
cache, reschedule elision, same-timestamp coalescing) claims *bit-for-bit*
identity with the original recompute-everything flow, which survives as
``ServerSystem(full_refresh=True)``. These properties replay random
workloads under both modes and compare every observable of the run —
not approximately, but with ``==`` on the raw floats.

A separate regression pins the energy-accounting semantics at the end of
a run: energy integrates exactly up to the last dispatched event, which
with a ticking policy trails the last process finish by the idle
monitor periods still in the queue — and covers nothing beyond.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.core.policy import VminPolicyTable
from repro.perf.contention import bandwidth_utilization, contention_factor
from repro.perf.model import bandwidth_demand_gbs, execution_state
from repro.platform.chip import Chip
from repro.platform.specs import xgene2_spec, xgene3_spec
from repro.power.model import PowerModel
from repro.policies.daemon import OnlineMonitoringDaemon
from repro.policies.governors import BaselinePolicy
from repro.policies.safevmin import SafeVminPolicy
from repro.policies.surfaces import Policy
from repro.sim.system import ServerSystem
from repro.telemetry.manifest import canonical_json
from repro.workloads.generator import JobSpec, Workload
from repro.workloads.suites import evaluation_pool, get_benchmark

SPEC2 = xgene2_spec()
SPEC3 = xgene3_spec()
POLICY2 = VminPolicyTable.from_characterization(SPEC2)
_POOL = [p.name for p in evaluation_pool()]


@st.composite
def workloads(draw, max_cores=8):
    """Small random workloads that fit the 8-core chip at issue time."""
    jobs = []
    count = draw(st.integers(1, 6))
    for job_id in range(count):
        name = draw(st.sampled_from(_POOL))
        parallel = get_benchmark(name).parallel
        nthreads = draw(st.sampled_from((2, 4))) if parallel else 1
        start = draw(st.floats(0.0, 120.0).map(lambda v: round(v, 2)))
        jobs.append(JobSpec(job_id, name, nthreads, start))
    return Workload(
        jobs=tuple(jobs), duration_s=300.0, max_cores=max_cores, seed=0
    )


def observables(result):
    """Every field of a run, in raw-float comparable form."""
    trace = None
    if result.trace is not None:
        trace = [
            (
                s.time_s,
                s.power_w,
                s.busy_cores,
                s.running_processes,
                s.cpu_intensive,
                s.memory_intensive,
                s.voltage_mv,
                s.mean_active_freq_hz,
            )
            for s in result.trace.samples
        ]
    return {
        "makespan_s": result.makespan_s,
        "energy_j": result.energy_j,
        "voltage_transitions": result.voltage_transitions,
        "frequency_transitions": result.frequency_transitions,
        "violations": [
            (v.time_s, v.voltage_mv, v.required_mv)
            for v in result.violations
        ],
        "processes": [
            (p.pid, p.start_s, p.finish_s, p.migrations, tuple(p.cores))
            for p in result.processes
        ],
        "trace": trace,
    }


def run_both(workload, make_policy, spec=SPEC2, **kwargs):
    fast = ServerSystem(
        Chip(spec), workload, make_policy(), **kwargs
    ).run()
    oracle = ServerSystem(
        Chip(spec),
        workload,
        make_policy(),
        full_refresh=True,
        **kwargs,
    ).run()
    return observables(fast), observables(oracle)


class TestIncrementalEquivalence:
    @given(workloads())
    @settings(max_examples=20, deadline=None)
    def test_baseline_bit_identical(self, workload):
        fast, oracle = run_both(workload, BaselinePolicy)
        assert fast == oracle

    @given(workloads())
    @settings(max_examples=15, deadline=None)
    def test_safe_vmin_bit_identical(self, workload):
        fast, oracle = run_both(
            workload, lambda: SafeVminPolicy(SPEC2, policy=POLICY2)
        )
        assert fast == oracle

    @given(workloads())
    @settings(max_examples=15, deadline=None)
    def test_daemon_bit_identical(self, workload):
        fast, oracle = run_both(
            workload,
            lambda: OnlineMonitoringDaemon(SPEC2, policy=POLICY2),
        )
        assert fast == oracle

    @given(workloads(max_cores=32), st.sampled_from([None, 0.5]))
    @settings(max_examples=10, deadline=None)
    def test_daemon_xgene3_with_and_without_trace(
        self, workload, trace_period_s
    ):
        policy3 = VminPolicyTable.from_characterization(SPEC3)
        fast, oracle = run_both(
            workload,
            lambda: OnlineMonitoringDaemon(SPEC3, policy=policy3),
            spec=SPEC3,
            trace_period_s=trace_period_s,
        )
        assert fast == oracle

    @given(workloads())
    @settings(max_examples=10, deadline=None)
    def test_fault_policy_off_bit_identical(self, workload):
        fast, oracle = run_both(
            workload, BaselinePolicy, fault_policy="off"
        )
        assert fast == oracle

    def test_env_var_forces_oracle(self, monkeypatch):
        workload = Workload(
            jobs=(JobSpec(0, "mcf", 1, 0.0),),
            duration_s=60.0,
            max_cores=8,
            seed=0,
        )
        monkeypatch.setenv("REPRO_SIM_FULL_REFRESH", "1")
        system = ServerSystem(
            Chip(SPEC2), workload, BaselinePolicy()
        )
        assert system.full_refresh
        monkeypatch.setenv("REPRO_SIM_FULL_REFRESH", "0")
        system = ServerSystem(
            Chip(SPEC2), workload, BaselinePolicy()
        )
        assert not system.full_refresh


class TestIncrementalDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        """Two incremental same-seed runs: identical results + metrics."""
        jobs = tuple(
            JobSpec(i, name, 1, 10.0 * i)
            for i, name in enumerate(("mcf", "lbm", "namd", "povray"))
        )
        workload = Workload(
            jobs=jobs, duration_s=300.0, max_cores=8, seed=7
        )

        def one_run():
            with telemetry.session() as registry:
                result = ServerSystem(
                    Chip(SPEC2),
                    workload,
                    OnlineMonitoringDaemon(SPEC2, policy=POLICY2),
                ).run()
                snap = registry.snapshot()
            return observables(result), snap

        obs_a, snap_a = one_run()
        obs_b, snap_b = one_run()
        assert json.dumps(obs_a, sort_keys=True) == json.dumps(
            obs_b, sort_keys=True
        )
        # The full metric snapshot — including the new refresh/elision
        # counters — must serialize to the same bytes run over run.
        assert canonical_json(snap_a) == canonical_json(snap_b)
        counters = snap_a["counters"]
        assert counters[telemetry.names.SIM_REFRESH_INCREMENTAL] > 0
        assert counters[telemetry.names.SIM_RESCHEDULE_ELIDED] > 0
        assert counters[telemetry.names.SIM_REFRESH_FULL] > 0


class _IdleTickPolicy(Policy):
    """No-op policy that keeps ticking past the last finish."""

    monitor_period_s = 7.0


class TestIdleTailEnergy:
    def test_energy_integrates_to_last_event_only(self):
        """Pin the end-of-run energy semantics with hand integration.

        One single-threaded, single-phase job ("mcf") runs for ``T_f``
        seconds at constant power; the no-op monitor ticks every 7 s.
        Energy must equal active power integrated up to ``T_f`` plus
        idle power over the gap up to the *last* tick event (the first
        tick at or after ``T_f``) — and nothing beyond it, even though
        nothing stops the wall clock there. The hand integration
        replays the meter's per-interval ``+= power * dt`` summation so
        the comparison is exact, not approximate.
        """
        workload = Workload(
            jobs=(JobSpec(0, "mcf", 1, 0.0),),
            duration_s=600.0,
            max_cores=8,
            seed=0,
        )
        system = ServerSystem(
            Chip(SPEC2),
            workload,
            _IdleTickPolicy(),
            trace_period_s=None,
            fault_policy="off",
        )
        result = system.run()
        finish_s = result.processes[0].finish_s
        assert finish_s is not None

        # Independently evaluate the two power levels from the models:
        # one process on core 0 at fmax, then the all-idle chip.
        behaviour = get_benchmark("mcf")
        demand = bandwidth_demand_gbs(behaviour, SPEC2, SPEC2.fmax_hz)
        crowd = contention_factor(SPEC2, [demand])
        bw_util = bandwidth_utilization(SPEC2, [demand])
        exec_state = execution_state(
            behaviour,
            SPEC2,
            SPEC2.fmax_hz,
            nthreads=1,
            shares_pmd=False,
            contention=crowd,
        )
        power_model = PowerModel(SPEC2)
        active_chip = Chip(SPEC2)
        active_chip.occupy(0, 0)
        active_w = power_model.chip_power(
            active_chip.state(),
            {0: exec_state.effective_activity},
            bw_util,
        ).total_w
        idle_w = power_model.chip_power(
            Chip(SPEC2).state(), {}, 0.0
        ).total_w

        # Event times: ticks by repeated 7 s addition (as the handler
        # schedules them), the finish interleaved; the run ends at the
        # first tick at/after the finish.
        period = _IdleTickPolicy.monitor_period_s
        times = []
        t = period
        while t < finish_s:
            times.append(t)
            t += period
        last_event_s = t
        times.extend([finish_s, last_event_s])

        expected_j = 0.0
        prev = 0.0
        for event_s in times:
            power_w = active_w if event_s <= finish_s else idle_w
            expected_j += power_w * (event_s - prev)
            prev = event_s

        assert result.energy_j == expected_j
        assert result.makespan_s == finish_s
        assert last_event_s > finish_s  # the idle tail is really there
