"""Property-based tests on whole-system invariants.

Random small workloads replayed under the Baseline and the daemon must
satisfy conservation and safety invariants regardless of composition.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.daemon import OnlineMonitoringDaemon
from repro.core.policy import VminPolicyTable
from repro.platform.chip import Chip
from repro.platform.specs import xgene2_spec
from repro.policies.governors import BaselinePolicy
from repro.sim.system import ServerSystem
from repro.workloads.generator import JobSpec, Workload
from repro.workloads.suites import evaluation_pool

SPEC2 = xgene2_spec()
POLICY2 = VminPolicyTable.from_characterization(SPEC2)
_POOL = [p.name for p in evaluation_pool()]


@st.composite
def workloads(draw):
    """Small random workloads that fit the 8-core chip at issue time."""
    jobs = []
    count = draw(st.integers(1, 6))
    for job_id in range(count):
        name = draw(st.sampled_from(_POOL))
        from repro.workloads.suites import get_benchmark

        parallel = get_benchmark(name).parallel
        nthreads = draw(st.sampled_from((2, 4))) if parallel else 1
        start = draw(
            st.floats(0.0, 120.0).map(lambda v: round(v, 2))
        )
        jobs.append(JobSpec(job_id, name, nthreads, start))
    return Workload(
        jobs=tuple(jobs), duration_s=300.0, max_cores=8, seed=0
    )


class TestSystemInvariants:
    @given(workloads())
    @settings(max_examples=25, deadline=None)
    def test_baseline_conservation(self, workload):
        system = ServerSystem(
            Chip(SPEC2), workload, BaselinePolicy()
        )
        result = system.run()
        # Everything completes, in order, with positive energy.
        assert all(p.finish_s is not None for p in result.processes)
        assert all(
            p.finish_s >= p.start_s >= p.arrival_s
            for p in result.processes
        )
        assert result.energy_j > 0
        assert result.makespan_s == max(
            p.finish_s for p in result.processes
        )
        # All cores released at the end.
        assert system.chip.active_cores == frozenset()

    @given(workloads())
    @settings(max_examples=25, deadline=None)
    def test_daemon_safety_and_conservation(self, workload):
        daemon = OnlineMonitoringDaemon(SPEC2, policy=POLICY2)
        system = ServerSystem(Chip(SPEC2), workload, daemon)
        result = system.run()
        assert result.violations == []
        assert all(p.finish_s is not None for p in result.processes)
        # Rail always within the regulator's range.
        for transition in system.chip.slimpro.transitions:
            assert (
                SPEC2.min_voltage_mv
                <= transition.to_mv
                <= SPEC2.nominal_voltage_mv
            )

    @given(workloads())
    @settings(max_examples=15, deadline=None)
    def test_daemon_never_faster_than_baseline(self, workload):
        base = ServerSystem(
            Chip(SPEC2), workload, BaselinePolicy()
        ).run()
        opt = ServerSystem(
            Chip(SPEC2),
            workload,
            OnlineMonitoringDaemon(SPEC2, policy=POLICY2),
        ).run()
        # The daemon trades a bounded amount of time for energy: never
        # meaningfully faster than the max-frequency baseline, never
        # pathologically slower. The lower band is a few percent, not
        # float noise: spread placement can genuinely relieve memory
        # contention on some random workloads (e.g. four simultaneous
        # arrivals mixing CG with bzip2/perlbench finish ~1.9% sooner
        # once the CG threads stop sharing a PMD with a neighbour).
        assert opt.makespan_s >= base.makespan_s * 0.97
        assert opt.makespan_s <= base.makespan_s * 2.5
